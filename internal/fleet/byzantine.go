package fleet

import (
	"math"
	"sort"
	"strings"

	"patty/internal/evalcache"
	"patty/internal/obs"
	"patty/internal/seed"
	"patty/internal/tuning"
)

// The byzantine defense: a worker that answers quickly and
// well-formedly but with *wrong costs* is invisible to every transport
// check, and one adopted lie poisons the deterministic merge that the
// replay — and every downstream gate — trusts. So the coordinator
// audits: for each completed shard it re-evaluates a seeded sample of
// K configurations locally (the objective is pure, so the honest cost
// is reproducible anywhere) and compares. A worker whose report
// diverges beyond tolerance is quarantined through the breaker, its
// in-flight shard is re-queued for an honest worker, and every
// evaluation it previously contributed is re-verified locally —
// divergent records are corrected in both the merge table and the
// checkpoint journal. The sample indices are a pure function of
// (seed, search signature, shard id), so auditing never perturbs the
// bit-identical-merge guarantee.
//
// The sampling argument: a liar that corrupts a fraction f of its
// evaluations escapes one shard's audit with probability (1-f)^K —
// 64% for f=0.2, K=2 — but must escape *every* shard it answers, and
// a single detection retroactively voids all of its contributions via
// re-verification. Lying is therefore only safe at f≈0, i.e. when the
// lies don't matter.

// WorkerHealth is the per-worker scorecard in Stats.Health — one row
// per configured worker, rendered by report.FleetTable.
type WorkerHealth struct {
	Worker       string `json:"worker"`
	Dispatched   int    `json:"dispatched"`
	Failed       int    `json:"failed"`
	Evals        int    `json:"evals"`
	CrossChecked int    `json:"cross_checked"`
	Divergent    int    `json:"divergent"`
	Benched      bool   `json:"benched,omitempty"`
	Quarantined  bool   `json:"quarantined,omitempty"`
}

// workerHealth is the scheduler's mutable counterpart (guarded by mu).
type workerHealth struct {
	dispatched, failed, evals, checked, divergent int
	benched, quarantined                          bool
	inst                                          peerInstruments
}

// peerInstruments are the live fleet.peer.<name>.* metrics for one
// worker.
type peerInstruments struct {
	dispatched, failed, evals *obs.Counter
	crosschecked, divergent   *obs.Counter
	quarantined, benched      *obs.Gauge
}

// peerKey turns a worker base URL into a metric-key segment:
// scheme stripped, ':' and '/' folded to '-'
// ("http://127.0.0.1:4713" -> "127.0.0.1-4713").
func peerKey(worker string) string {
	s := worker
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}

// healthOf returns (creating on first use) the scorecard for worker.
// Callers hold s.mu.
func (s *scheduler) healthOf(worker string) *workerHealth {
	h := s.health[worker]
	if h == nil {
		pk := "fleet.peer." + peerKey(worker) + "."
		h = &workerHealth{inst: peerInstruments{
			dispatched:   s.coll.Counter(pk + "dispatched"),
			failed:       s.coll.Counter(pk + "failed"),
			evals:        s.coll.Counter(pk + "evals"),
			crosschecked: s.coll.Counter(pk + "crosschecked"),
			divergent:    s.coll.Counter(pk + "divergent"),
			quarantined:  s.coll.Gauge(pk + "quarantined"),
			benched:      s.coll.Gauge(pk + "benched"),
		}}
		s.health[worker] = h
	}
	return h
}

// noteDispatch counts a shard dispatch attempt against worker.
func (s *scheduler) noteDispatch(worker string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.healthOf(worker)
	h.dispatched++
	h.inst.dispatched.Inc()
}

// noteFault records a classified dispatch fault. Busy/throttle
// refusals count as net faults but not against the worker's health
// (an overloaded worker is not a broken one).
func (s *scheduler) noteFault(worker string, class FaultClass, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NetFaults[string(class)]++
	s.coll.Counter("fleet.net." + string(class)).Inc()
	if failed {
		h := s.healthOf(worker)
		h.failed++
		h.inst.failed.Inc()
	}
}

// noteBenched flags worker as permanently lost after repeated
// failures.
func (s *scheduler) noteBenched(worker string) {
	s.mu.Lock()
	h := s.healthOf(worker)
	h.benched = true
	h.inst.benched.Set(1)
	s.mu.Unlock()
	s.benched()
}

// healthRows exports the scorecards, sorted by worker, for Stats.
func (s *scheduler) healthRows(workers []string) []WorkerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range workers { // ensure every configured worker has a row
		s.healthOf(w)
	}
	out := make([]WorkerHealth, 0, len(s.health))
	for w, h := range s.health {
		out = append(out, WorkerHealth{
			Worker: w, Dispatched: h.dispatched, Failed: h.failed,
			Evals: h.evals, CrossChecked: h.checked, Divergent: h.divergent,
			Benched: h.benched, Quarantined: h.quarantined,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// pickSample deterministically selects k distinct indices in [0, n)
// for the audit — a pure function of (seedBase, search signature,
// shard id), so every run (and every holder of a stolen shard) audits
// the same configurations.
func pickSample(seedBase int64, search string, shard, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	h := seedBase
	for _, b := range []byte(search) {
		h = seed.Mix(h, int64(b))
	}
	h = seed.Mix(h, int64(shard))
	picked := make(map[int]bool, k)
	out := make([]int, 0, k)
	for i := 0; len(out) < k; i++ {
		idx := int(uint64(seed.Mix(h, int64(i))) % uint64(n))
		if !picked[idx] {
			picked[idx] = true
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// costsAgree compares a reported cost against the local truth. Faulted
// evaluations (Inf/NaN) agree only with faulted evaluations; finite
// costs agree within a relative tolerance (the objective is pure, so
// honest divergence is at most float noise).
func costsAgree(reported, truth, tol float64) bool {
	rBad := math.IsInf(reported, 0) || math.IsNaN(reported)
	tBad := math.IsInf(truth, 0) || math.IsNaN(truth)
	if rBad || tBad {
		return rBad == tBad
	}
	return math.Abs(reported-truth) <= tol*math.Max(1, math.Max(math.Abs(reported), math.Abs(truth)))
}

// localTruth returns the honest cost of an assignment, evaluating
// LocalObjective at most once per key (cached across audits and
// re-verification).
func (s *scheduler) localTruth(a map[string]int, opts Options) float64 {
	key := tuning.AssignKey(a)
	s.mu.Lock()
	if c, ok := s.truth[key]; ok {
		s.mu.Unlock()
		return c
	}
	s.mu.Unlock()
	cost := opts.LocalObjective(a) // outside the lock: may be slow
	s.mu.Lock()
	s.truth[key] = cost
	s.mu.Unlock()
	return cost
}

// crossCheck audits one shard response: re-evaluate the seeded sample
// locally and compare. Reports whether the worker diverged (in which
// case the response must not be merged).
func (s *scheduler) crossCheck(worker string, req ShardRequest, resp *ShardResponse, opts Options) bool {
	if opts.CrossCheck <= 0 || len(resp.Evals) == 0 {
		return false
	}
	divergent := false
	for _, idx := range pickSample(opts.CrossCheckSeed, req.Search, req.Shard, len(resp.Evals), opts.CrossCheck) {
		reported := resp.Evals[idx].EffectiveCost()
		truth := s.localTruth(resp.Evals[idx].Assignment, opts)
		s.mu.Lock()
		h := s.healthOf(worker)
		h.checked++
		h.inst.crosschecked.Inc()
		s.stats.CrossChecked++
		s.inst.crosschecked.Inc()
		if !costsAgree(reported, truth, opts.CrossCheckTol) {
			divergent = true
			h.divergent++
			h.inst.divergent.Inc()
			s.stats.Divergent++
			s.inst.divergent.Inc()
		}
		s.mu.Unlock()
	}
	return divergent
}

// quarantine removes a divergent worker from the fleet and repairs the
// damage: trip the byzantine breaker (so the worker stays out for the
// rest of the search), then re-verify every evaluation the worker
// previously contributed to the merge — records whose cost disagrees
// with the locally re-measured truth are corrected in the table and
// the checkpoint journal. After this the merged table contains only
// honest costs, which is what keeps the replay bit-identical to a
// local run.
func (s *scheduler) quarantine(worker string, opts Options) {
	s.mu.Lock()
	s.byz.Record(worker, true)
	h := s.healthOf(worker)
	if h.quarantined {
		s.mu.Unlock()
		return
	}
	h.quarantined = true
	h.inst.quarantined.Set(1)
	s.stats.ByzantineQuarantined = append(s.stats.ByzantineQuarantined, worker)
	sort.Strings(s.stats.ByzantineQuarantined)
	s.inst.quarantined.Inc()
	// Snapshot the worker's prior contributions under the lock; the
	// re-measurement happens outside it.
	var suspect []tuning.EvalRecord
	for key, src := range s.source {
		if src == worker {
			suspect = append(suspect, s.table[key])
		}
	}
	s.mu.Unlock()

	for _, rec := range suspect {
		truth := s.localTruth(rec.Assignment, opts)
		s.mu.Lock()
		s.stats.Reverified++
		s.inst.reverified.Inc()
		if !costsAgree(rec.EffectiveCost(), truth, opts.CrossCheckTol) {
			fixed := tuning.EvalRecord{Assignment: rec.Assignment, Cost: truth}
			if math.IsInf(truth, 0) || math.IsNaN(truth) {
				fixed.Cost, fixed.Faulted = 0, true
			}
			key := tuning.AssignKey(rec.Assignment)
			s.table[key] = fixed
			delete(s.source, key) // now locally vouched for
			if s.ck != nil {
				s.ck.Correct(rec.Assignment, truth)
			}
			if s.cache != nil {
				// The liar's cost reached the shared store when its shard
				// merged; a poisoned entry must not outlive the search,
				// let alone answer another tenant's job. Correct appends
				// the repair durably (replay is last-wins).
				s.cache.Correct(evalcache.Entry{
					Program: s.cacheProg, Config: key, Seed: s.cacheSeed,
					Cost: fixed.Cost, Faulted: fixed.Faulted,
				})
			}
			s.stats.Corrected++
			s.inst.corrected.Inc()
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	if s.ck != nil && s.stats.Corrected > 0 {
		s.ck.Flush() // best effort; the final Flush reports errors
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}
