package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"patty/internal/evalcache"
	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/report"
	"patty/internal/tuning"
)

// Worker serves shard evaluations: the `patty worker` process body.
// Every shard request is admitted through a jobs.Service (bounded
// queue, load shedding, supervised pool) and evaluated configuration
// by configuration. When a Cache is attached, every configuration is
// looked up in — and every fresh measurement journaled into — the
// persistent content-addressed store, so a worker restarted after a
// crash (or serving a resubmitted program, from any search) answers
// already-measured costs instead of re-running them. Hits and inserts
// count in the shared cache.* grammar, the same keys local tuning
// publishes.
type Worker struct {
	svc          *jobs.Service
	newObjective func(spec json.RawMessage) (tuning.Objective, error)
	cache        *evalcache.Store
	maxBody      int64

	// intake is the admission breaker: sheds trip it and its remaining
	// cooldown becomes the 503 Retry-After value.
	intake *jobs.Breaker

	shards  *obs.Counter
	evals   *obs.Counter
	statusz func() obs.Snapshot
}

// NewWorker wires a Worker onto an admission service. newObjective
// reconstructs the objective from the opaque per-shard spec; cache nil
// disables evaluation caching; c receives the fleet.worker.* metrics
// (nil: discarded).
func NewWorker(svc *jobs.Service, newObjective func(json.RawMessage) (tuning.Objective, error), cache *evalcache.Store, c *obs.Collector) *Worker {
	return &Worker{
		svc:          svc,
		newObjective: newObjective,
		cache:        cache,
		maxBody:      MaxBodyBytes,
		intake:       jobs.NewBreaker(3, time.Second),
		shards:       c.Counter("fleet.worker.shards"),
		evals:        c.Counter("fleet.worker.evals"),
		statusz:      c.Snapshot,
	}
}

// cacheKeyFor builds the store address for one configuration of a
// shard. Requests from coordinators that predate content addressing
// carry no Program; "search:"+Search keeps their entries correct
// (scoped to one search identity) without ever colliding with a
// sha256 content address.
func cacheKeyFor(req ShardRequest, a map[string]int) evalcache.Key {
	prog := req.Program
	if prog == "" {
		prog = "search:" + req.Search
	}
	return evalcache.Key{Program: prog, Config: tuning.AssignKey(a), Seed: req.Seed}
}

// evaluate runs one shard, honoring cancellation between
// configurations.
func (wk *Worker) evaluate(ctx context.Context, req ShardRequest) (*ShardResponse, error) {
	obj, err := wk.newObjective(req.Spec)
	if err != nil {
		return nil, fmt.Errorf("bad shard spec: %w", err)
	}
	resp := &ShardResponse{Shard: req.Shard, Evals: make([]tuning.EvalRecord, 0, len(req.Configs))}
	for _, a := range req.Configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if wk.cache != nil {
			if e, ok := wk.cache.Get(cacheKeyFor(req, a), ""); ok {
				resp.Evals = append(resp.Evals, tuning.EvalRecord{
					Assignment: copyAssign(a), Cost: e.Cost, Faulted: e.Faulted,
				})
				continue
			}
		}
		cost := obj(a)
		rec := tuning.EvalRecord{Assignment: copyAssign(a), Cost: cost}
		if math.IsInf(cost, 1) || math.IsNaN(cost) || math.IsInf(cost, -1) {
			rec.Cost, rec.Faulted = 0, true
		}
		if wk.cache != nil {
			k := cacheKeyFor(req, a)
			wk.cache.Put(evalcache.Entry{
				Program: k.Program, Config: k.Config, Seed: k.Seed,
				Cost: rec.Cost, Faulted: rec.Faulted,
			})
		}
		wk.evals.Inc()
		resp.Evals = append(resp.Evals, rec)
	}
	wk.shards.Inc()
	return resp, nil
}

// handleShard is POST /shards: hardened intake, admission through the
// jobs service, synchronous answer. A shed submission answers 503 with
// the intake breaker's remaining cooldown as Retry-After.
func (wk *Worker) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !DecodeJSON(w, r, wk.maxBody, &req) {
		return
	}
	if len(req.Configs) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("shard carries no configurations"))
		return
	}
	id, err := wk.svc.Submit("shard", func(ctx context.Context) (any, error) {
		return wk.evaluate(ctx, req)
	})
	if errors.Is(err, jobs.ErrOverloaded) || errors.Is(err, jobs.ErrDraining) {
		w.Header().Set("Retry-After", fmt.Sprint(jobs.ShedRetryAfter(wk.intake)))
		WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	wk.intake.Record(jobs.IntakeKey, false)
	if _, err := wk.svc.Wait(r.Context(), id); err != nil {
		// The coordinator went away; stop burning the evaluation.
		wk.svc.Cancel(id)
		WriteError(w, http.StatusRequestTimeout, err)
		return
	}
	res, info, err := wk.svc.Result(id)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	if info.Status != jobs.StatusDone {
		WriteError(w, http.StatusInternalServerError,
			fmt.Errorf("shard job %s: %s", info.Status, info.Error))
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

// Mux returns the worker's HTTP surface: POST /shards plus the same
// health/status endpoints `patty serve` exposes.
func (wk *Worker) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shards", wk.handleShard)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if wk.svc.Draining() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		snap := wk.statusz()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h, ok := obs.AnalyzeService(snap); ok {
			fmt.Fprint(w, report.ServiceTable(h))
		}
		if fh, ok := obs.AnalyzeFleet(snap); ok {
			fmt.Fprint(w, report.FleetTable(fh))
		}
		if ch, ok := obs.AnalyzeCache(snap); ok {
			fmt.Fprint(w, report.CacheTable(ch))
		}
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, wk.statusz())
	})
	return mux
}
