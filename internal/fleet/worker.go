package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"patty/internal/checkpoint"
	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/report"
	"patty/internal/tuning"
)

// WorkerCacheKind tags a worker's per-search evaluation journal in the
// checkpoint envelope.
const WorkerCacheKind = "fleet-worker-cache"

// Worker serves shard evaluations: the `patty worker` process body.
// Every shard request is admitted through a jobs.Service (bounded
// queue, load shedding, supervised pool), evaluated configuration by
// configuration, and — when CacheDir is set — journaled per search so
// a worker restarted after a crash replays already-measured costs
// instead of re-running them.
type Worker struct {
	svc          *jobs.Service
	newObjective func(spec json.RawMessage) (tuning.Objective, error)
	cacheDir     string
	maxBody      int64

	// intake is the admission breaker: sheds trip it and its remaining
	// cooldown becomes the 503 Retry-After value.
	intake *jobs.Breaker

	mu     sync.Mutex
	caches map[string]*workerCache

	shards    *obs.Counter
	evals     *obs.Counter
	cacheHits *obs.Counter
	statusz   func() obs.Snapshot
}

// NewWorker wires a Worker onto an admission service. newObjective
// reconstructs the objective from the opaque per-shard spec; cacheDir
// "" disables the evaluation journal; c receives the fleet.worker.*
// metrics (nil: discarded).
func NewWorker(svc *jobs.Service, newObjective func(json.RawMessage) (tuning.Objective, error), cacheDir string, c *obs.Collector) *Worker {
	return &Worker{
		svc:          svc,
		newObjective: newObjective,
		cacheDir:     cacheDir,
		maxBody:      MaxBodyBytes,
		intake:       jobs.NewBreaker(3, time.Second),
		caches:       make(map[string]*workerCache),
		shards:       c.Counter("fleet.worker.shards"),
		evals:        c.Counter("fleet.worker.evals"),
		cacheHits:    c.Counter("fleet.worker.cache_hits"),
		statusz:      c.Snapshot,
	}
}

// workerCache is one search's journaled evaluations.
type workerCache struct {
	mu    sync.Mutex
	path  string // "" when journaling is disabled
	state workerCacheState
	byKey map[string]tuning.EvalRecord
	// saveFailed latches after the first failed write: the journal is
	// an optimization (the coordinator owns durability), so a broken
	// disk degrades to re-evaluation instead of failing shards.
	saveFailed bool
}

type workerCacheState struct {
	Search string              `json:"search"`
	Evals  []tuning.EvalRecord `json:"evals"`
}

// cacheFor loads (or creates) the journal for one search signature.
func (wk *Worker) cacheFor(search string) *workerCache {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if c, ok := wk.caches[search]; ok {
		return c
	}
	c := &workerCache{byKey: make(map[string]tuning.EvalRecord)}
	c.state.Search = search
	if wk.cacheDir != "" {
		h := fnv.New64a()
		h.Write([]byte(search))
		c.path = filepath.Join(wk.cacheDir, fmt.Sprintf("fleet-worker-%016x.ckpt", h.Sum64()))
		err := checkpoint.Load(c.path, WorkerCacheKind, &c.state)
		switch {
		case err == nil && c.state.Search == search:
			for _, rec := range c.state.Evals {
				c.byKey[tuning.AssignKey(rec.Assignment)] = rec
			}
		case err == nil || errors.Is(err, fs.ErrNotExist):
			// Hash collision with another search, or a fresh journal:
			// start empty.
			c.state = workerCacheState{Search: search}
		default:
			// Corrupt journal: start over; the next save rewrites it.
			c.state = workerCacheState{Search: search}
		}
	}
	wk.caches[search] = c
	return c
}

func (c *workerCache) get(key string) (tuning.EvalRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.byKey[key]
	return rec, ok
}

func (c *workerCache) put(key string, rec tuning.EvalRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	c.byKey[key] = rec
	c.state.Evals = append(c.state.Evals, rec)
	if c.path != "" && !c.saveFailed {
		if err := checkpoint.Save(c.path, WorkerCacheKind, &c.state); err != nil {
			c.saveFailed = true
		}
	}
}

// evaluate runs one shard, honoring cancellation between
// configurations.
func (wk *Worker) evaluate(ctx context.Context, req ShardRequest) (*ShardResponse, error) {
	obj, err := wk.newObjective(req.Spec)
	if err != nil {
		return nil, fmt.Errorf("bad shard spec: %w", err)
	}
	cache := wk.cacheFor(req.Search)
	resp := &ShardResponse{Shard: req.Shard, Evals: make([]tuning.EvalRecord, 0, len(req.Configs))}
	for _, a := range req.Configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := tuning.AssignKey(a)
		if rec, ok := cache.get(key); ok {
			wk.cacheHits.Inc()
			resp.Evals = append(resp.Evals, rec)
			continue
		}
		cost := obj(a)
		rec := tuning.EvalRecord{Assignment: copyAssign(a), Cost: cost}
		if math.IsInf(cost, 1) || math.IsNaN(cost) || math.IsInf(cost, -1) {
			rec.Cost, rec.Faulted = 0, true
		}
		cache.put(key, rec)
		wk.evals.Inc()
		resp.Evals = append(resp.Evals, rec)
	}
	wk.shards.Inc()
	return resp, nil
}

// handleShard is POST /shards: hardened intake, admission through the
// jobs service, synchronous answer. A shed submission answers 503 with
// the intake breaker's remaining cooldown as Retry-After.
func (wk *Worker) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !DecodeJSON(w, r, wk.maxBody, &req) {
		return
	}
	if len(req.Configs) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("shard carries no configurations"))
		return
	}
	id, err := wk.svc.Submit("shard", func(ctx context.Context) (any, error) {
		return wk.evaluate(ctx, req)
	})
	if errors.Is(err, jobs.ErrOverloaded) || errors.Is(err, jobs.ErrDraining) {
		w.Header().Set("Retry-After", fmt.Sprint(jobs.ShedRetryAfter(wk.intake)))
		WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	wk.intake.Record(jobs.IntakeKey, false)
	if _, err := wk.svc.Wait(r.Context(), id); err != nil {
		// The coordinator went away; stop burning the evaluation.
		wk.svc.Cancel(id)
		WriteError(w, http.StatusRequestTimeout, err)
		return
	}
	res, info, err := wk.svc.Result(id)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	if info.Status != jobs.StatusDone {
		WriteError(w, http.StatusInternalServerError,
			fmt.Errorf("shard job %s: %s", info.Status, info.Error))
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

// Mux returns the worker's HTTP surface: POST /shards plus the same
// health/status endpoints `patty serve` exposes.
func (wk *Worker) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shards", wk.handleShard)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if wk.svc.Draining() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		snap := wk.statusz()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h, ok := obs.AnalyzeService(snap); ok {
			fmt.Fprint(w, report.ServiceTable(h))
		}
		if fh, ok := obs.AnalyzeFleet(snap); ok {
			fmt.Fprint(w, report.FleetTable(fh))
		}
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, wk.statusz())
	})
	return mux
}
