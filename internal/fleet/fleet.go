// Package fleet shards an auto-tuning search across worker processes:
// a coordinator partitions the search's configuration space into
// shards, leases them to `patty worker` instances over HTTP, merges
// the per-configuration costs into one table, and finally replays the
// tuner locally against that table — producing a tuning.Result that is
// bit-identical to an uninterrupted single-process TuneCtx run.
//
// The determinism argument has two legs:
//
//  1. The objective is a pure function of the assignment (the tuning
//     contract every workload here obeys: the performance model is
//     deterministic and the fault shim is a hash of the canonical
//     assignment key). A cost computed on worker 3 equals the cost the
//     local run would have measured.
//  2. The replay runs the *same search algorithm* with the *same
//     inputs*: algo, dims, start, budget, and per-assignment costs.
//     Which worker produced a cost — or whether a shard was evaluated
//     twice because of a steal, a lease expiry or a worker death —
//     cannot change the value, so the replayed Result (Best, BestCost,
//     Evaluations, Trace) is identical for 1, 2 or N workers.
//
// Enumerate returns a provable superset of every configuration the
// stock tuners can visit (Min-anchored lattice ∪ start-anchored
// lattice ∪ clamp targets, per dimension), so the replay normally
// never misses the table; a miss (an exotic future tuner) falls back
// to one local evaluation, which purity keeps identical.
//
// Fault tolerance: a shard lease is an in-flight HTTP dispatch with a
// TTL'd context. Worker death surfaces as a transport error, a hang as
// the TTL expiry — both return the shard to the pending queue for
// re-dispatch. Idle workers steal: they duplicate-dispatch the oldest
// slow in-flight shard (first result wins, the loser's evaluations are
// deduped by assignment key). A worker that fails several dispatches
// in a row is benched for good. The coordinator journals every
// merged evaluation into the same checkpoint format `patty tune
// -checkpoint` uses, so a crashed coordinator resumes by re-adopting
// the merged prefix and re-leasing only the remainder — and a fleet
// checkpoint is even resumable by a plain local search.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"patty/internal/tuning"
)

// ShardRequest is the body of POST /shards on a worker: one leased
// shard of the configuration space, plus the opaque objective spec the
// worker's NewObjective interprets.
type ShardRequest struct {
	// Search is the owning search's canonical identity
	// (tuning.SearchMeta.Signature); the worker's content-addressed
	// fallback key when no Program hash is supplied, so two searches
	// never share cached costs by accident.
	Search string `json:"search"`
	// Shard is the coordinator-assigned shard id (diagnostic).
	Shard int `json:"shard"`
	// Spec is the opaque objective specification, interpreted by the
	// worker's NewObjective hook.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Program is the canonical content address of the workload
	// (evalcache.ProgramHash / SpecHash); with Seed it lets a worker
	// share its persistent evaluation store across searches, tenants
	// and restarts. Empty on requests from older coordinators — the
	// worker then falls back to "search:"+Search, which never matches
	// a content address.
	Program string `json:"program,omitempty"`
	// Seed is the measurement seed completing the cache address.
	Seed int64 `json:"seed,omitempty"`
	// Configs are the assignments to evaluate.
	Configs []map[string]int `json:"configs"`
}

// ShardResponse is the worker's answer: one EvalRecord per requested
// configuration, in request order. Faulted evaluations carry the flag
// instead of a non-JSON-encodable +Inf.
type ShardResponse struct {
	Shard int                 `json:"shard"`
	Evals []tuning.EvalRecord `json:"evals"`
}

// MaxBodyBytes is the default POST body cap of the hardened intakes
// (`patty serve` and `patty worker`). A shard of every configuration
// of a maximal search fits comfortably.
const MaxBodyBytes = 1 << 20

// WriteJSON writes v as indented JSON with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// WriteError writes the error envelope every non-2xx JSON answer uses.
func WriteError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, map[string]string{"error": err.Error()})
}

// DecodeJSON enforces the hardened intake contract shared by `patty
// serve` and `patty worker`: a non-JSON Content-Type answers 415, the
// body is capped at maxBody bytes (413 past the cap), a declared
// Content-Length that disagrees with the bytes actually delivered
// answers 400 (a truncated or padded wire must not half-parse into a
// plausible request), and malformed JSON answers 400. Returns false
// when an error response was already written. An absent Content-Type
// is treated as JSON so plain tooling keeps working; anything
// explicitly different is refused.
func DecodeJSON(w http.ResponseWriter, r *http.Request, maxBody int64, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			WriteError(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("content type %q not supported; send application/json", ct))
			return false
		}
	}
	if maxBody <= 0 {
		maxBody = MaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	if r.ContentLength >= 0 && r.ContentLength != int64(len(data)) {
		WriteError(w, http.StatusBadRequest,
			fmt.Errorf("content-length %d disagrees with body length %d", r.ContentLength, len(data)))
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// copyAssign clones an assignment map.
func copyAssign(a map[string]int) map[string]int {
	out := make(map[string]int, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
