package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// FaultClass labels a coordinator-observed dispatch failure by wire
// symptom — the observation-side mirror of the injection taxonomy in
// internal/netchaos. Classes surface as fleet.net.<class> counters and
// in Stats.NetFaults, so an operator can tell a flaky link (drop,
// timeout) from a corrupting middlebox (truncated, corrupt) from a
// misbehaving worker (mismatch) without reading logs.
type FaultClass string

const (
	// ClassTimeout: the lease TTL expired with no response — a hung
	// worker or a black-holed route.
	ClassTimeout FaultClass = "timeout"
	// ClassDrop: the connection failed outright (reset, refused,
	// aborted mid-response).
	ClassDrop FaultClass = "drop"
	// ClassTruncated: the response body ended mid-JSON — a connection
	// cut after the headers.
	ClassTruncated FaultClass = "truncated"
	// ClassCorrupt: the body arrived whole but is not valid JSON (or
	// not the expected shape).
	ClassCorrupt FaultClass = "corrupt"
	// ClassMismatch: well-formed JSON whose evaluations do not answer
	// the shard that was asked — wrong count or wrong assignment keys.
	// A protocol bug or a byzantine worker.
	ClassMismatch FaultClass = "mismatch"
	// ClassThrottle: the worker refused with 429 + Retry-After.
	ClassThrottle FaultClass = "throttle"
	// ClassBusy: the worker shed with 503 + Retry-After.
	ClassBusy FaultClass = "busy"
	// ClassOther: everything else (unexpected status, marshal errors).
	ClassOther FaultClass = "other"
)

// WireError is a classified dispatch failure.
type WireError struct {
	Worker string
	Class  FaultClass
	Err    error
}

func (e *WireError) Error() string {
	return fmt.Sprintf("worker %s: %s fault: %v", e.Worker, e.Class, e.Err)
}

func (e *WireError) Unwrap() error { return e.Err }

// classOf extracts the fault class from a dispatch error.
func classOf(err error) FaultClass {
	var we *WireError
	if errors.As(err, &we) {
		return we.Class
	}
	return ClassOther
}

// classifyTransport maps a client.Do failure: a deadline that fired is
// a timeout (the lease TTL elapsed), everything else is a drop.
func classifyTransport(err error) FaultClass {
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	return ClassDrop
}

// classifyDecode maps a response-body decode failure: an EOF mid-value
// is truncation, a syntax or type error is corruption.
func classifyDecode(err error) FaultClass {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return ClassTruncated
	}
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	if errors.As(err, &syn) || errors.As(err, &typ) {
		return ClassCorrupt
	}
	return ClassCorrupt
}
