package fleet

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"patty/internal/jobs"
	"patty/internal/netchaos"
	"patty/internal/obs"
	"patty/internal/ptest"
	"patty/internal/seed"
	"patty/internal/tuning"
)

// startChaosWorker is startWorker with the injector's server-side
// faults (throttle, latency, drop) wrapped around the mux.
func startChaosWorker(t *testing.T, hook func(json.RawMessage) (tuning.Objective, error), inj *netchaos.Injector) string {
	t.Helper()
	c := obs.New()
	svc := jobs.New(jobs.Options{Workers: 2, QueueDepth: 32, Collector: c})
	wk := NewWorker(svc, hook, nil, c)
	ts := httptest.NewServer(inj.Middleware(wk.Mux()))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return ts.URL
}

// liarHandler answers the shard protocol correctly but lies about
// costs: every configuration for which lie(req, index) is true reports
// a plausible, finite, silently wrong cost. It is the adversary the
// byzantine audit exists for — no transport check can tell its answers
// from honest ones.
func liarHandler(obj tuning.Objective, lie func(req ShardRequest, idx int) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ShardRequest
		if !DecodeJSON(w, r, MaxBodyBytes, &req) {
			return
		}
		resp := ShardResponse{Shard: req.Shard}
		for i, a := range req.Configs {
			cost := obj(a)
			if lie(req, i) {
				cost = cost*3 + 17
			}
			resp.Evals = append(resp.Evals, tuning.EvalRecord{Assignment: a, Cost: cost})
		}
		WriteJSON(w, http.StatusOK, resp)
	})
}

// TestNetChaosByzantineGate is the `make netchaos` tentpole gate: a
// real multi-worker search where the coordinator's client runs through
// the seeded wire-fault injector (latency, drops, timeouts, truncated
// bodies, corrupted JSON, duplicated requests, reordered responses,
// timed partitions), the honest workers' servers inject throttles and
// aborts, and a third worker lies about every cost. The fleet must
// quarantine the liar, finish, and produce a result bit-identical to
// the uninterrupted local reference — with every fault class
// observably fired.
//
// Catching the liar requires one of its responses to survive the wire
// (a lie that never arrives intact is indistinguishable from a dead
// worker), so the adversarial schedule is retried a couple of times if
// fault starvation kept the liar from ever answering cleanly; the
// result-identity and coverage requirements hold on every attempt.
func TestNetChaosByzantineGate(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	dims, start, obj := testSpace()
	tn := tuning.TabuSearch{}
	ref := tn.TuneCtx(context.Background(), dims, start, obj, 120)

	c := obs.New()
	inj := netchaos.New(netchaos.GatePlan()).Instrument(c)

	// Two honest-but-slow workers behind the server-side injector; the
	// liar is fast and chaos-free on its own server, so it competes
	// hard for shards — the audit, not luck, has to stop it.
	slowHook := func(json.RawMessage) (tuning.Objective, error) {
		return func(a map[string]int) float64 {
			time.Sleep(2 * time.Millisecond)
			return obj(a)
		}, nil
	}
	honest1 := startChaosWorker(t, slowHook, inj)
	honest2 := startChaosWorker(t, slowHook, inj)
	liar := httptest.NewServer(liarHandler(obj, func(ShardRequest, int) bool { return true }))
	defer func() {
		liar.Close()
		http.DefaultClient.CloseIdleConnections()
	}()

	var st *Stats
	for attempt := 0; attempt < 3; attempt++ {
		res, stats, err := Tune(context.Background(), tn, dims, start, 120, Options{
			Workers:         []string{honest1, honest2, liar.URL},
			LocalObjective:  obj,
			Collector:       c,
			Client:          &http.Client{Transport: inj.Transport(nil)},
			ShardSize:       1,
			LeaseTTL:        500 * time.Millisecond,
			WorkerFailLimit: 25,
			RetryJitterSeed: int64(attempt + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("hostile-network fleet result diverged from local reference:\n got %+v\nwant %+v", res, ref)
		}
		st = stats
		if len(st.ByzantineQuarantined) > 0 {
			break
		}
		t.Logf("attempt %d: liar never answered cleanly (net faults %v), retrying", attempt, st.NetFaults)
	}

	// The liar must be quarantined, and only the liar.
	if len(st.ByzantineQuarantined) != 1 || st.ByzantineQuarantined[0] != liar.URL {
		t.Fatalf("quarantined %v, want exactly the liar %s", st.ByzantineQuarantined, liar.URL)
	}
	if st.Divergent < 1 || st.CrossChecked < st.Divergent {
		t.Fatalf("audit ledger inconsistent: %+v", st)
	}
	var liarHealth *WorkerHealth
	for i := range st.Health {
		if st.Health[i].Worker == liar.URL {
			liarHealth = &st.Health[i]
		} else if st.Health[i].Quarantined {
			t.Fatalf("honest worker %s marked quarantined", st.Health[i].Worker)
		}
	}
	if liarHealth == nil || !liarHealth.Quarantined || liarHealth.Divergent < 1 {
		t.Fatalf("liar scorecard wrong: %+v", st.Health)
	}
	// The liar lies on every config, so it is caught on its first clean
	// response — before contributing anything to the merge.
	if liarHealth.Evals != 0 {
		t.Fatalf("liar contributed %d merged evals despite quarantine", liarHealth.Evals)
	}

	// Every injected fault class fired (coverage is a pinned property
	// of the gate seed, not sampling luck — see netchaos's gate test).
	if missing := inj.MissingClasses(); len(missing) > 0 {
		t.Fatalf("fault classes never injected: %v (stats %+v)", missing, inj.Stats())
	}

	// And each is observable downstream: injected counters in the
	// collector, classified dispatch faults in the coordinator's
	// fleet.net.* ledger.
	snap := c.Snapshot()
	for _, class := range netchaos.Classes {
		if snap.Counters["fleet.net.injected."+class] == 0 {
			t.Errorf("fleet.net.injected.%s = 0, want > 0", class)
		}
	}
	if snap.Counters["fleet.byzantine.quarantined"] < 1 {
		t.Fatalf("fleet.byzantine.quarantined = %d, want >= 1", snap.Counters["fleet.byzantine.quarantined"])
	}
	for _, class := range []FaultClass{ClassDrop, ClassTimeout, ClassTruncated, ClassCorrupt, ClassThrottle} {
		if snap.Counters["fleet.net."+string(class)] == 0 {
			t.Errorf("fleet.net.%s = 0, want > 0 (coordinator never observed one)", class)
		}
	}
}

// TestRetryAfterHonored: a worker that throttles with 429 + Retry-After
// is backed off from, not benched — even at WorkerFailLimit 1, where
// miscounting the refusal as a failure would lose the worker and fail
// the search.
func TestRetryAfterHonored(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	dims, start, obj := testSpace()
	tn := tuning.LinearSearch{}
	ref := tn.TuneCtx(context.Background(), dims, start, obj, 120)

	var throttled atomic.Int64
	honest := liarHandler(obj, func(ShardRequest, int) bool { return false })
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if throttled.Add(1) == 1 { // first dispatch: quota refusal
			w.Header().Set("Retry-After", "1")
			http.Error(w, "quota", http.StatusTooManyRequests)
			return
		}
		honest.ServeHTTP(w, r)
	}))
	defer func() {
		srv.Close()
		http.DefaultClient.CloseIdleConnections()
	}()

	t0 := time.Now()
	res, st, err := Tune(context.Background(), tn, dims, start, 120, Options{
		Workers:         []string{srv.URL},
		LocalObjective:  obj,
		ShardSize:       4,
		WorkerFailLimit: 1, // a 429 counted as a failure would bench the only worker
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("result diverged after throttle:\n got %+v\nwant %+v", res, ref)
	}
	if st.WorkersLost != 0 {
		t.Fatalf("throttled worker was benched: %+v", st)
	}
	if st.NetFaults[string(ClassThrottle)] < 1 {
		t.Fatalf("throttle not recorded in the net-fault ledger: %+v", st.NetFaults)
	}
	// The advertised 1s Retry-After was honored (jittered to >= 750ms).
	if elapsed := time.Since(t0); elapsed < 700*time.Millisecond {
		t.Fatalf("search finished in %v; the 1s Retry-After was not honored", elapsed)
	}
}

// TestQuarantineReverifiesAndCorrects: a liar smart enough to dodge the
// audit — honest on exactly the sampled configurations, lying on the
// rest — gets its dodged lies merged. When its next shard catches it,
// quarantine must re-verify everything it previously contributed and
// correct the lies, so the final result still matches the local
// reference bit for bit.
func TestQuarantineReverifiesAndCorrects(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	dims, start, obj := testSpace()
	tn := tuning.LinearSearch{}
	ref := tn.TuneCtx(context.Background(), dims, start, obj, 120)

	const ckSeed = 99
	// The liar's first answer dodges the audit: honest exactly where
	// pickSample will look (the sample is deterministic, and the liar
	// knows the search signature from the request — a worst-case
	// adversary). Every later answer lies on sampled configs too, which
	// is what finally gets it caught. Responses are strictly sequential
	// (one coordinator goroutine per worker), so counting them is safe.
	var responses atomic.Int64
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := responses.Add(1)
		liarHandler(obj, func(req ShardRequest, idx int) bool {
			if n == 1 {
				for _, s := range pickSample(ckSeed, req.Search, req.Shard, len(req.Configs), 2) {
					if s == idx {
						return false
					}
				}
			}
			return true
		}).ServeHTTP(w, r)
	}))
	defer func() {
		liar.Close()
		http.DefaultClient.CloseIdleConnections()
	}()

	// The honest worker is slow, so the fast liar wins the early shards
	// and its dodged lies are what's in the table when it gets caught.
	var calls atomic.Int64
	honest, _ := startWorker(t, countingHook(func(a map[string]int) float64 {
		time.Sleep(20 * time.Millisecond)
		return obj(a)
	}, &calls), "")

	res, st, err := Tune(context.Background(), tn, dims, start, 120, Options{
		Workers:        []string{honest, liar.URL},
		LocalObjective: obj,
		ShardSize:      4,
		CrossCheck:     2,
		CrossCheckSeed: ckSeed,
		StealAfter:     time.Hour, // no speculative duplicates: the liar's merges stand until reverified
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("result diverged despite reverification:\n got %+v\nwant %+v", res, ref)
	}
	if len(st.ByzantineQuarantined) != 1 || st.ByzantineQuarantined[0] != liar.URL {
		t.Fatalf("quarantined %v, want the dodging liar", st.ByzantineQuarantined)
	}
	// The liar's first shard (4 configs: 2 audited honest, 2 lied) was
	// merged, then re-verified in full when the second shard caught it;
	// exactly the 2 lies needed correction.
	if st.Reverified != 4 {
		t.Fatalf("reverified %d contributions, want the liar's full first shard (4): %+v", st.Reverified, st)
	}
	if st.Corrected != 2 {
		t.Fatalf("corrected %d lied costs, want 2: %+v", st.Corrected, st)
	}
}

// TestPickSampleDeterministic: the audit sample is a pure function of
// (seed, search, shard) — distinct, in range, sorted, stable — and
// different shards sample differently.
func TestPickSampleDeterministic(t *testing.T) {
	a := pickSample(seed.Default, "algo=tabu;", 3, 10, 4)
	b := pickSample(seed.Default, "algo=tabu;", 3, 10, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pickSample not deterministic: %v vs %v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("sample size %d, want 4", len(a))
	}
	seen := map[int]bool{}
	for i, idx := range a {
		if idx < 0 || idx >= 10 || seen[idx] {
			t.Fatalf("bad sample %v", a)
		}
		if i > 0 && a[i-1] >= idx {
			t.Fatalf("sample not sorted: %v", a)
		}
		seen[idx] = true
	}
	varies := false
	for shard := 0; shard < 8; shard++ {
		if !reflect.DeepEqual(pickSample(seed.Default, "algo=tabu;", shard, 10, 4), a) {
			varies = true
		}
	}
	if !varies {
		t.Fatal("every shard sampled identically")
	}
	// k >= n degrades to auditing everything; k <= 0 or n <= 0 to nothing.
	if got := pickSample(1, "s", 0, 3, 9); len(got) != 3 {
		t.Fatalf("k>n sample = %v, want all 3", got)
	}
	if pickSample(1, "s", 0, 0, 2) != nil || pickSample(1, "s", 0, 5, 0) != nil {
		t.Fatal("degenerate samples not empty")
	}
}

// TestCostsAgree: faulted matches faulted, finite costs compare within
// relative tolerance.
func TestCostsAgree(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{100, 100, 1e-9, true},
		{100, 100 + 1e-10, 1e-9, true},
		{100, 101, 1e-9, false},
		{0, 0, 1e-9, true},
		{inf, inf, 1e-9, true},
		{-inf, inf, 1e-9, true}, // both faulted, both unusable
		{inf, 100, 1e-9, false},
		{100, inf, 1e-9, false},
		{math.NaN(), inf, 1e-9, true},
		{math.NaN(), 100, 1e-9, false},
	}
	for _, c := range cases {
		if got := costsAgree(c.a, c.b, c.tol); got != c.want {
			t.Errorf("costsAgree(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

// TestPeerKey: worker URLs become stable metric-key segments.
func TestPeerKey(t *testing.T) {
	cases := map[string]string{
		"http://127.0.0.1:4713":  "127.0.0.1-4713",
		"https://worker-3.local": "worker-3.local",
		"host:80/path":           "host-80-path",
	}
	for in, want := range cases {
		if got := peerKey(in); got != want {
			t.Errorf("peerKey(%q) = %q, want %q", in, got, want)
		}
	}
}
