package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"patty/internal/evalcache"
	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/seed"
	"patty/internal/tuning"
)

// Options configures a distributed search.
type Options struct {
	// Workers are the base URLs of `patty worker` processes
	// ("http://host:port"). At least one is required.
	Workers []string
	// Spec is the opaque objective specification shipped with every
	// shard; the worker's NewObjective hook interprets it.
	Spec json.RawMessage
	// LocalObjective evaluates a configuration in-process. Required: it
	// is the replay's fallback for table misses, keeping the distributed
	// result identical even for configurations no shard covered.
	LocalObjective tuning.Objective
	// Checkpoint, when non-empty, journals merged evaluations to this
	// path in the `patty tune -checkpoint` format: a crashed coordinator
	// resumes from it, and so does a plain local search.
	Checkpoint string
	// Collector receives the fleet.* metrics (nil: discarded).
	Collector *obs.Collector

	// BreakerThreshold is the replay's config-quarantine threshold
	// (default 3), matching the local runTune breaker.
	BreakerThreshold int
	// Observed, when set, mediates the replay's fault attribution the
	// way the local tune path does: only panics and fault-policy
	// analyses count as faults, not a bare +Inf cost. Nil keeps the
	// stricter default where any Inf/NaN cost trips the breaker.
	Observed *tuning.Observed
	// ShardSize caps configurations per shard. Default: the space split
	// four ways per worker, so stealing has slack to work with.
	ShardSize int
	// LeaseTTL bounds one shard dispatch: when it elapses the in-flight
	// HTTP request is canceled and the shard is re-dispatched
	// (default 30s).
	LeaseTTL time.Duration
	// StealAfter is the in-flight age past which an idle worker may
	// speculatively duplicate-dispatch a shard (default LeaseTTL/4).
	StealAfter time.Duration
	// MaxSpace refuses to enumerate spaces larger than this many
	// configurations (default 65536).
	MaxSpace int
	// WorkerFailLimit benches a worker permanently after this many
	// consecutive dispatch failures (default 3).
	WorkerFailLimit int
	// Client is the HTTP client for shard dispatch (default
	// http.DefaultClient). A netchaos.Injector Transport plugs in here.
	Client *http.Client

	// Cache, when non-nil (and CacheProgram non-empty), is the
	// persistent content-addressed evaluation store: enumerated
	// configurations already cached are merged into the table before
	// sharding (they never hit the wire), every fresh merged
	// evaluation is journaled into it, and byzantine repairs correct
	// it. CacheProgram/CacheSeed complete the (program, config, seed)
	// address; CacheTenant attributes hits.
	Cache        *evalcache.Store
	CacheProgram string
	CacheSeed    int64
	CacheTenant  string

	// CrossCheck is the byzantine audit width: per completed shard, this
	// many sampled configurations are re-evaluated locally and compared
	// against the worker's report (default 2; -1 disables auditing).
	CrossCheck int
	// CrossCheckSeed drives the audit's sample selection
	// (default seed.Default); the sample is a pure function of
	// (seed, search signature, shard id).
	CrossCheckSeed int64
	// CrossCheckTol is the relative tolerance separating float noise
	// from a lie (default 1e-9; the objective is pure, so honest
	// divergence is at most rounding).
	CrossCheckTol float64
	// RetryJitterSeed seeds the per-worker retry/backoff jitter
	// (default seed.Default). Jitter spreads synchronized retries; the
	// seed keeps tests deterministic.
	RetryJitterSeed int64
}

func (o Options) withDefaults(space int) Options {
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.ShardSize <= 0 {
		per := space / (4 * max(len(o.Workers), 1))
		o.ShardSize = max(per, 1)
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.StealAfter <= 0 {
		o.StealAfter = o.LeaseTTL / 4
	}
	if o.MaxSpace <= 0 {
		o.MaxSpace = 1 << 16
	}
	if o.WorkerFailLimit <= 0 {
		o.WorkerFailLimit = 3
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.CrossCheck == 0 {
		o.CrossCheck = 2
	}
	if o.CrossCheckSeed == 0 {
		o.CrossCheckSeed = seed.Default
	}
	if o.CrossCheckTol <= 0 {
		o.CrossCheckTol = 1e-9
	}
	if o.RetryJitterSeed == 0 {
		o.RetryJitterSeed = seed.Default
	}
	return o
}

// Stats summarizes what the fleet did to produce a Result — the
// distributed layer's side channel, since the Result itself is
// indistinguishable from a local run's by design.
type Stats struct {
	Workers      int      // workers the search started with
	WorkersLost  int      // workers benched after repeated failures
	Shards       int      // shards the space was partitioned into
	Merged       int      // distinct evaluations merged into the table
	Duplicates   int      // worker evaluations discarded as duplicates
	Redispatched int      // lease expiries / failures re-queued
	Stolen       int      // speculative duplicate dispatches
	LocalEvals   int      // replay table misses evaluated locally
	Resumed      int      // evaluations re-adopted from the checkpoint
	CacheHits    int      // configs answered from the shared store before sharding
	Quarantined  []string // configs the replay breaker quarantined

	// Hostile-network ledger.
	NetFaults map[string]int // classified dispatch faults by FaultClass

	// Byzantine-defense ledger.
	CrossChecked         int            // audited (worker cost vs local truth) comparisons
	Divergent            int            // audited comparisons that disagreed
	Reverified           int            // prior contributions re-measured after a quarantine
	Corrected            int            // re-verified records whose cost was repaired
	ByzantineQuarantined []string       // workers quarantined for divergent costs
	Health               []WorkerHealth // per-worker scorecards, sorted by worker
}

// scheduler is the coordinator's shared shard state. All fields are
// guarded by mu; cond wakes workers blocked in next.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	shards  []Shard
	pending []int            // shard ids awaiting (re-)dispatch
	lease   map[int]*leaseIn // shard id -> in-flight state
	done    map[int]bool
	nDone   int

	table  map[string]tuning.EvalRecord // merged costs by assignment key
	source map[string]string            // eval key -> worker that produced the merged record
	truth  map[string]float64           // locally re-measured costs (audit cache)
	health map[string]*workerHealth     // per-worker scorecards
	byz    *jobs.Breaker                // byzantine quarantine (keyed by worker URL)
	ck     *tuning.Checkpointer         // nil when checkpointing is off

	stats Stats
	inst  fleetInstruments
	coll  *obs.Collector // for dynamic fleet.net.* / fleet.peer.* keys

	// Shared evaluation store (nil when caching is off): merged costs
	// are journaled into it and byzantine repairs correct it.
	cache       *evalcache.Store
	cacheProg   string
	cacheSeed   int64
	cacheTenant string

	now func() time.Time
}

// cachePut journals one merged record into the shared store (no-op
// without a cache). The cache fields are immutable after setup and the
// store has its own lock, so this is safe with or without s.mu held.
func (s *scheduler) cachePut(key string, rec tuning.EvalRecord) {
	if s.cache == nil {
		return
	}
	e := evalcache.Entry{
		Program: s.cacheProg, Config: key, Seed: s.cacheSeed,
		Cost: rec.Cost, Faulted: rec.Faulted, Tenant: s.cacheTenant,
	}
	if math.IsInf(e.Cost, 0) || math.IsNaN(e.Cost) {
		e.Cost, e.Faulted = 0, true // +Inf is not JSON-encodable; the flag carries it
	}
	s.cache.Put(e)
}

type leaseIn struct {
	holders int
	since   time.Time
}

type fleetInstruments struct {
	shardsDone   *obs.Counter
	redispatched *obs.Counter
	stolen       *obs.Counter
	merged       *obs.Counter
	duplicate    *obs.Counter
	local        *obs.Counter
	resumed      *obs.Counter
	lost         *obs.Counter
	rtt          *obs.Histogram

	crosschecked *obs.Counter
	divergent    *obs.Counter
	quarantined  *obs.Counter
	reverified   *obs.Counter
	corrected    *obs.Counter
}

func newInstruments(c *obs.Collector) fleetInstruments {
	return fleetInstruments{
		shardsDone:   c.Counter("fleet.shards.done"),
		redispatched: c.Counter("fleet.shards.redispatched"),
		stolen:       c.Counter("fleet.shards.stolen"),
		merged:       c.Counter("fleet.evals.merged"),
		duplicate:    c.Counter("fleet.evals.duplicate"),
		local:        c.Counter("fleet.evals.local"),
		resumed:      c.Counter("fleet.evals.resumed"),
		lost:         c.Counter("fleet.workers.lost"),
		rtt:          c.Histogram("fleet.shard.rtt_ns"),

		crosschecked: c.Counter("fleet.byzantine.crosschecked"),
		divergent:    c.Counter("fleet.byzantine.divergent"),
		quarantined:  c.Counter("fleet.byzantine.quarantined"),
		reverified:   c.Counter("fleet.byzantine.reverified"),
		corrected:    c.Counter("fleet.byzantine.corrected"),
	}
}

// next blocks until a shard is available for this worker and leases it.
// Pending shards are served first; with none pending it steals the
// oldest in-flight shard that has been out longer than stealAfter and
// has fewer than two holders. Returns ok=false when every shard is done
// or ctx is canceled.
func (s *scheduler) next(ctx context.Context, stealAfter time.Duration) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ctx.Err() != nil || s.nDone == len(s.shards) {
			return 0, false
		}
		if len(s.pending) > 0 {
			id := s.pending[0]
			s.pending = s.pending[1:]
			l := s.lease[id]
			if l == nil {
				l = &leaseIn{since: s.now()}
				s.lease[id] = l
			}
			l.holders++
			return id, true
		}
		// Steal: oldest in-flight shard past the speculation age.
		best, bestAge := -1, stealAfter
		for id, l := range s.lease {
			if s.done[id] || l.holders == 0 || l.holders >= 2 {
				continue
			}
			if age := s.now().Sub(l.since); age >= bestAge {
				best, bestAge = id, age
			}
		}
		if best >= 0 {
			s.lease[best].holders++
			s.stats.Stolen++
			s.inst.stolen.Inc()
			return best, true
		}
		// Nothing to do yet. If an in-flight shard will become
		// steal-eligible, wake up in time to take it.
		var wake *time.Timer
		wakeIn := time.Duration(-1)
		for id, l := range s.lease {
			if s.done[id] || l.holders == 0 || l.holders >= 2 {
				continue
			}
			d := max(stealAfter-s.now().Sub(l.since), time.Millisecond)
			if wakeIn < 0 || d < wakeIn {
				wakeIn = d
			}
		}
		if wakeIn >= 0 {
			wake = time.AfterFunc(wakeIn, s.cond.Broadcast)
		}
		s.cond.Wait()
		if wake != nil {
			wake.Stop()
		}
	}
}

// release returns a failed lease. When the last holder gives up and the
// shard is not done it is re-queued at the front; redispatch counts the
// re-queue only for genuine failures (counted=true), not 503 busy
// answers.
func (s *scheduler) release(id int, counted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lease[id]
	if l == nil {
		return
	}
	l.holders--
	if l.holders <= 0 && !s.done[id] {
		delete(s.lease, id)
		s.pending = append([]int{id}, s.pending...)
		if counted {
			s.stats.Redispatched++
			s.inst.redispatched.Inc()
		}
		s.cond.Broadcast()
	}
}

// complete merges one shard response. First completion wins; a late
// duplicate (steal loser, or a re-dispatched shard whose original
// eventually answered) contributes nothing and is counted as such.
// Evaluations are deduplicated by canonical assignment key across the
// whole search, and journaled through the checkpointer (one Flush per
// merged shard bounds the re-evaluation window after a coordinator
// crash).
func (s *scheduler) complete(id int, worker string, evals []tuning.EvalRecord, rtt time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inst.rtt.Record(int64(rtt))
	if l := s.lease[id]; l != nil {
		l.holders--
	}
	h := s.healthOf(worker)
	fresh := 0
	for _, rec := range evals {
		key := tuning.AssignKey(rec.Assignment)
		if _, ok := s.table[key]; ok {
			s.stats.Duplicates++
			s.inst.duplicate.Inc()
			continue
		}
		s.table[key] = rec
		s.source[key] = worker // provenance: re-verified if the worker turns byzantine
		s.stats.Merged++
		s.inst.merged.Inc()
		h.evals++
		h.inst.evals.Inc()
		fresh++
		if s.ck != nil {
			s.ck.Record(rec.Assignment, rec.EffectiveCost())
		}
		s.cachePut(key, rec)
	}
	if !s.done[id] {
		s.done[id] = true
		s.nDone++
		delete(s.lease, id)
		s.inst.shardsDone.Inc()
		if s.ck != nil && fresh > 0 {
			s.ck.Flush() // best effort; the final Flush reports errors
		}
	}
	s.cond.Broadcast()
}

// benched records a permanently lost worker.
func (s *scheduler) benched() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.WorkersLost++
	s.inst.lost.Inc()
	s.cond.Broadcast()
}

// busyError is a worker's refusal (503 shed or 429 throttle): honor
// the advertised Retry-After, don't bench.
type busyError struct {
	after    time.Duration
	throttle bool // true: 429 quota refusal; false: 503 shed
}

func (e busyError) Error() string { return fmt.Sprintf("worker busy, retry after %s", e.after) }

// dispatch sends one shard to one worker and decodes the answer. The
// request context carries the lease TTL: a hung worker is abandoned
// when it expires and the shard is re-queued by the caller. Failures
// come back classified (WireError / busyError) so the caller's retry
// policy and the fleet.net.* ledger can tell fault classes apart, and
// the response is validated to actually answer the shard that was
// asked: evaluation count and per-index assignment keys must match the
// request, anything else is ClassMismatch.
func dispatch(ctx context.Context, client *http.Client, worker string, req ShardRequest, ttl time.Duration) (*ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	lctx, cancel := context.WithTimeout(ctx, ttl)
	defer cancel()
	hreq, err := http.NewRequestWithContext(lctx, http.MethodPost, worker+"/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, &WireError{Worker: worker, Class: classifyTransport(err), Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, busyError{after: after, throttle: resp.StatusCode == http.StatusTooManyRequests}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, &WireError{Worker: worker, Class: ClassOther,
			Err: fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	var sr ShardResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, MaxBodyBytes)).Decode(&sr); err != nil {
		return nil, &WireError{Worker: worker, Class: classifyDecode(err),
			Err: fmt.Errorf("bad shard response: %w", err)}
	}
	if len(sr.Evals) != len(req.Configs) {
		return nil, &WireError{Worker: worker, Class: ClassMismatch,
			Err: fmt.Errorf("shard %d: %d evals for %d configs", req.Shard, len(sr.Evals), len(req.Configs))}
	}
	for i, rec := range sr.Evals {
		if tuning.AssignKey(rec.Assignment) != tuning.AssignKey(req.Configs[i]) {
			return nil, &WireError{Worker: worker, Class: ClassMismatch,
				Err: fmt.Errorf("shard %d eval %d answers %q, asked %q", req.Shard, i,
					tuning.AssignKey(rec.Assignment), tuning.AssignKey(req.Configs[i]))}
		}
	}
	return &sr, nil
}

// Tune runs the distributed search: enumerate, partition, lease shards
// to workers, merge, then replay tn locally against the merged cost
// table. The returned Result is identical to an uninterrupted local
// tn.TuneCtx run with the same inputs (see the package comment for the
// argument); Stats reports what the fleet did along the way.
func Tune(ctx context.Context, tn tuning.Tuner, dims []tuning.Dim, start map[string]int, budget int, opts Options) (tuning.Result, *Stats, error) {
	if len(opts.Workers) == 0 {
		return tuning.Result{}, nil, errors.New("fleet: no workers")
	}
	if opts.LocalObjective == nil {
		return tuning.Result{}, nil, errors.New("fleet: LocalObjective is required")
	}
	space := SpaceSize(dims, start)
	opts = opts.withDefaults(space)
	if space > opts.MaxSpace {
		return tuning.Result{}, nil, fmt.Errorf("fleet: search space has %d configurations, above the %d cap; tune locally or raise MaxSpace", space, opts.MaxSpace)
	}

	meta := tuning.SearchMeta{Algo: tn.Name(), Budget: budget, Dims: dims, Start: start}
	sched := &scheduler{
		lease:  make(map[int]*leaseIn),
		done:   make(map[int]bool),
		table:  make(map[string]tuning.EvalRecord),
		source: make(map[string]string),
		truth:  make(map[string]float64),
		health: make(map[string]*workerHealth),
		// One divergence is enough: a worker caught lying about a pure
		// function stays out for the rest of the search.
		byz:  jobs.NewBreaker(1, time.Hour),
		inst: newInstruments(opts.Collector),
		coll: opts.Collector,
		now:  time.Now,
	}
	sched.stats.NetFaults = make(map[string]int)
	sched.cond = sync.NewCond(&sched.mu)
	if opts.Cache != nil && opts.CacheProgram != "" {
		sched.cache = opts.Cache
		sched.cacheProg = opts.CacheProgram
		sched.cacheSeed = opts.CacheSeed
		sched.cacheTenant = opts.CacheTenant
	}

	// Resume: re-adopt the merged prefix and the quarantine set from the
	// journal; only the remainder of the space is sharded out.
	exclude := make(map[string]bool)
	if opts.Checkpoint != "" {
		ck, resumed, err := tuning.NewCheckpointer(opts.Checkpoint, meta)
		if err != nil {
			return tuning.Result{}, nil, err
		}
		sched.ck = ck
		sched.stats.Resumed = resumed
		for _, rec := range ck.Records() {
			key := tuning.AssignKey(rec.Assignment)
			sched.table[key] = rec
			exclude[key] = true
			sched.inst.resumed.Inc()
		}
		for _, key := range ck.Quarantined() {
			exclude[key] = true
		}
	}

	// Cache pre-filter: enumerated configurations already in the shared
	// store merge straight into the table — they never hit the wire.
	// Journaling them through the checkpointer keeps the resume path
	// agnostic to where a cost came from.
	if sched.cache != nil {
		for _, a := range Enumerate(dims, start) {
			key := tuning.AssignKey(a)
			if exclude[key] {
				continue
			}
			e, ok := sched.cache.Get(evalcache.Key{Program: sched.cacheProg, Config: key, Seed: sched.cacheSeed}, sched.cacheTenant)
			if !ok {
				continue
			}
			sched.table[key] = tuning.EvalRecord{Assignment: copyAssign(a), Cost: e.Cost, Faulted: e.Faulted}
			exclude[key] = true
			sched.stats.CacheHits++
			sched.stats.Merged++
			sched.inst.merged.Inc()
			if sched.ck != nil {
				sched.ck.Record(a, e.EffectiveCost())
			}
		}
		if sched.ck != nil && sched.stats.CacheHits > 0 {
			sched.ck.Flush()
		}
	}

	sched.shards = Partition(Enumerate(dims, start), opts.ShardSize, exclude)
	for i := range sched.shards {
		sched.pending = append(sched.pending, i)
	}
	sched.stats.Workers = len(opts.Workers)
	sched.stats.Shards = len(sched.shards)
	opts.Collector.Gauge("fleet.workers").Set(int64(len(opts.Workers)))
	opts.Collector.Gauge("fleet.shards.total").Set(int64(len(sched.shards)))

	// Dispatch loop: one goroutine per worker; a canceled ctx or the
	// last merged shard drains them all.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watch := make(chan struct{})
	go func() { // wake cond waiters on cancellation
		defer close(watch)
		<-fctx.Done()
		sched.cond.Broadcast()
	}()

	var wg sync.WaitGroup
	for widx, worker := range opts.Workers {
		wg.Add(1)
		go func(widx int, worker string) {
			defer wg.Done()
			// Per-worker jitter stream: deterministic under the seed,
			// different per worker so synchronized refusals de-correlate.
			rng := rand.New(rand.NewSource(seed.Mix(opts.RetryJitterSeed, int64(widx))))
			consecFail := 0
			backoff := 50 * time.Millisecond
			for {
				if !sched.byz.Allow(worker) {
					return // quarantined: out for the rest of the search
				}
				id, ok := sched.next(fctx, opts.StealAfter)
				if !ok {
					return
				}
				req := ShardRequest{
					Search:  meta.Signature(),
					Shard:   id,
					Spec:    opts.Spec,
					Program: opts.CacheProgram,
					Seed:    opts.CacheSeed,
					Configs: sched.shards[id].Configs,
				}
				sched.noteDispatch(worker)
				t0 := time.Now()
				resp, err := dispatch(fctx, opts.Client, worker, req, opts.LeaseTTL)
				var busy busyError
				switch {
				case err == nil:
					consecFail = 0
					backoff = 50 * time.Millisecond
					if sched.crossCheck(worker, req, resp, opts) {
						// The audit caught a lie: never merge this
						// response; quarantine the worker, repair its
						// past contributions, and hand the shard to an
						// honest worker.
						sched.quarantine(worker, opts)
						sched.release(id, true)
						return
					}
					sched.complete(id, worker, resp.Evals, time.Since(t0))
				case errors.As(err, &busy):
					// Overloaded, not broken: hand the shard back and
					// honor the advertised backoff, jittered so a crowd
					// of refused dispatchers spreads out (capped).
					class := ClassBusy
					if busy.throttle {
						class = ClassThrottle
					}
					sched.noteFault(worker, class, false)
					sched.release(id, false)
					sleepCtx(fctx, min(jobs.Jitter(rng, busy.after), 2*time.Second))
				case fctx.Err() != nil:
					// The search is shutting down, not the worker
					// failing: hand the shard back uncounted.
					sched.release(id, false)
				default:
					sched.noteFault(worker, classOf(err), true)
					sched.release(id, true)
					consecFail++
					if consecFail >= opts.WorkerFailLimit {
						sched.noteBenched(worker)
						return
					}
					sleepCtx(fctx, jobs.Jitter(rng, backoff))
					backoff = min(backoff*2, time.Second)
				}
			}
		}(widx, worker)
	}
	wg.Wait()
	cancel()
	<-watch
	sched.stats.Health = sched.healthRows(opts.Workers)

	sched.mu.Lock()
	unfinished := len(sched.shards) - sched.nDone
	sched.mu.Unlock()
	if unfinished > 0 && ctx.Err() == nil {
		// Every worker was benched or quarantined with shards
		// outstanding. The merged prefix is journaled; a re-run (fleet
		// or local) resumes it.
		if sched.ck != nil {
			sched.ck.Flush()
		}
		st := sched.stats
		return tuning.Result{}, &st, fmt.Errorf("fleet: all %d workers lost (%d benched, %d quarantined) with %d of %d shards unfinished",
			len(opts.Workers), st.WorkersLost, len(st.ByzantineQuarantined), unfinished, len(sched.shards))
	}

	// Replay: run the actual search algorithm locally against the merged
	// table. The breaker mirrors the local runTune quarantine semantics;
	// a table miss (exotic tuner step outside the enumerated superset)
	// falls back to one local evaluation, which objective purity keeps
	// identical to what a worker would have measured.
	br := jobs.NewBreaker(opts.BreakerThreshold, 30*time.Second).Instrument(opts.Collector)
	if sched.ck != nil {
		br.Restore(sched.ck.Quarantined())
	}
	tableObj := func(a map[string]int) float64 {
		key := tuning.AssignKey(a)
		if rec, ok := sched.table[key]; ok {
			return rec.EffectiveCost()
		}
		cost := opts.LocalObjective(a)
		sched.stats.LocalEvals++
		sched.inst.local.Inc()
		rec := tuning.EvalRecord{Assignment: copyAssign(a), Cost: cost}
		sched.table[key] = rec
		if sched.ck != nil {
			sched.ck.Record(a, cost)
		}
		sched.cachePut(key, rec)
		return cost
	}
	guarded := tableObj
	if opts.Observed != nil {
		guarded = opts.Observed.Wrap(guarded)
	}
	res := tn.TuneCtx(ctx, dims, start, jobs.GuardObjective(br, opts.Observed, guarded), budget)

	sched.stats.Quarantined = br.Quarantined()
	if sched.ck != nil {
		sched.ck.Quarantine = br.Quarantined
		if err := sched.ck.Flush(); err != nil {
			st := sched.stats
			return res, &st, fmt.Errorf("fleet: checkpoint not durable: %w", err)
		}
	}
	st := sched.stats
	return res, &st, nil
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
