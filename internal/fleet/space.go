package fleet

import (
	"sort"

	"patty/internal/tuning"
)

// dimValues returns every value of one dimension any stock tuner can
// visit, sorted ascending:
//
//   - the Min-anchored lattice Min, Min+step, ... (LinearSearch sweeps
//     it, RandomSearch samples it, NelderMead rounds onto it),
//   - the start-anchored lattice start±k·step (TabuSearch walks it,
//     and LinearSearch keeps the start value of dimensions it has not
//     improved yet),
//   - Min and Max themselves (clampDim lands exactly there).
//
// The union is a superset of the reachable set, which is what makes
// the replay's cost table complete for the stock tuners (fleet.go has
// the argument; a miss still falls back to one local evaluation).
func dimValues(d tuning.Dim, start int) []int {
	step := d.Step
	if step <= 0 {
		step = 1
	}
	set := map[int]bool{d.Min: true, d.Max: true}
	for v := d.Min; v <= d.Max; v += step {
		set[v] = true
	}
	if start >= d.Min && start <= d.Max {
		for v := start; v <= d.Max; v += step {
			set[v] = true
		}
		for v := start; v >= d.Min; v -= step {
			set[v] = true
		}
	}
	vals := make([]int, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// SpaceSize returns the number of configurations Enumerate would
// produce, without materializing them — the coordinator's guard
// against unboundedly large grids.
func SpaceSize(dims []tuning.Dim, start map[string]int) int {
	n := 1
	for _, d := range dims {
		n *= len(dimValues(d, start[d.Key]))
	}
	return n
}

// Enumerate materializes the search space: the cross product of every
// dimension's reachable values, in deterministic order (dimensions
// sorted by key, row-major, last dimension fastest). Keys of start not
// named by any dimension are carried into every assignment unchanged,
// exactly as the tuners carry them.
func Enumerate(dims []tuning.Dim, start map[string]int) []map[string]int {
	ds := append([]tuning.Dim(nil), dims...)
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
	vals := make([][]int, len(ds))
	total := 1
	for i, d := range ds {
		vals[i] = dimValues(d, start[d.Key])
		total *= len(vals[i])
	}
	out := make([]map[string]int, 0, total)
	idx := make([]int, len(ds))
	for {
		a := copyAssign(start)
		for i, d := range ds {
			a[d.Key] = vals[i][idx[i]]
		}
		out = append(out, a)
		i := len(ds) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(vals[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// Shard is one leasable unit of the configuration space.
type Shard struct {
	ID      int
	Configs []map[string]int
}

// Partition splits configurations into shards of at most size configs,
// skipping assignments whose canonical key is in exclude (already
// merged from a checkpoint, or quarantined by a previous run's
// breaker). Exclusion happens before slicing, so a quarantine set
// spanning what would have been a shard boundary simply shifts the
// boundaries — no shard ever carries an excluded configuration, and
// the shard list stays dense. A config list smaller than the worker
// count yields fewer shards than workers; the extra workers steal or
// idle.
func Partition(configs []map[string]int, size int, exclude map[string]bool) []Shard {
	if size <= 0 {
		size = 1
	}
	var shards []Shard
	var cur []map[string]int
	for _, a := range configs {
		if exclude[tuning.AssignKey(a)] {
			continue
		}
		cur = append(cur, a)
		if len(cur) == size {
			shards = append(shards, Shard{ID: len(shards), Configs: cur})
			cur = nil
		}
	}
	if len(cur) > 0 {
		shards = append(shards, Shard{ID: len(shards), Configs: cur})
	}
	return shards
}
