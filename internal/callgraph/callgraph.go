// Package callgraph builds the static call graph of an analyzed
// program and interprocedural side-effect summaries.
//
// The call graph is the third ingredient of the paper's semantic model.
// The summaries answer, per function, which parameters, receivers and
// globals it may write — transitively through calls — and implement
// deps.EffectOracle so that per-statement access sets include call
// effects. Calls that cannot be resolved inside the program (imported
// functions) are treated as side-effect free: the *optimistic* stance
// of the paper, whose residual risk the generated correctness tests
// cover.
package callgraph

import (
	"go/ast"
	"sort"

	"patty/internal/deps"
	"patty/internal/source"
)

// Summary is the side-effect summary of one function.
type Summary struct {
	Name string
	// WritesParams holds the indices of parameters whose pointees /
	// elements the function may write (scalars passed by value are
	// never included: writing them has no caller-visible effect).
	WritesParams map[int]bool
	// WritesRecv reports that the receiver may be mutated.
	WritesRecv bool
	// WritesGlobals lists package-level variables the function may
	// write, directly or transitively.
	WritesGlobals map[string]bool
	// Callees lists resolved callee names.
	Callees []string
}

// Pure reports whether the function has no caller-visible side
// effects.
func (s *Summary) Pure() bool {
	return len(s.WritesParams) == 0 && !s.WritesRecv && len(s.WritesGlobals) == 0
}

// Graph is the program call graph with effect summaries.
type Graph struct {
	Prog      *source.Program
	Summaries map[string]*Summary

	resolutions map[string]*deps.Resolution
	// methodIndex maps a method name to the functions implementing it.
	methodIndex map[string][]string
}

// callSite records one call with its argument symbol mapping, for
// effect propagation.
type callSite struct {
	caller   string
	callees  []string
	argSyms  []*deps.Symbol // nil entries for non-symbol arguments
	recvSym  *deps.Symbol
	paramOf  map[*deps.Symbol]int // caller param symbol → index
	recvOf   *deps.Symbol         // caller receiver symbol
	isGlobal map[*deps.Symbol]bool
}

// Build analyzes prog and returns its call graph.
func Build(prog *source.Program) *Graph {
	g := &Graph{
		Prog:        prog,
		Summaries:   make(map[string]*Summary),
		resolutions: make(map[string]*deps.Resolution),
		methodIndex: make(map[string][]string),
	}
	for _, fn := range prog.Functions() {
		g.Summaries[fn.Name] = &Summary{
			Name:          fn.Name,
			WritesParams:  make(map[int]bool),
			WritesGlobals: make(map[string]bool),
		}
		g.resolutions[fn.Name] = deps.Resolve(fn)
		if i := indexByte(fn.Name, '.'); i >= 0 {
			m := fn.Name[i+1:]
			g.methodIndex[m] = append(g.methodIndex[m], fn.Name)
		}
	}

	var sites []*callSite
	for _, fn := range prog.Functions() {
		sites = append(sites, g.directEffects(fn)...)
	}

	// Fixed-point propagation of effects through call sites.
	for changed := true; changed; {
		changed = false
		for _, site := range sites {
			caller := g.Summaries[site.caller]
			for _, calleeName := range site.callees {
				callee, ok := g.Summaries[calleeName]
				if !ok {
					continue
				}
				for idx := range callee.WritesParams {
					if idx >= len(site.argSyms) || site.argSyms[idx] == nil {
						continue
					}
					if changedFlag := g.liftWrite(caller, site, site.argSyms[idx]); changedFlag {
						changed = true
					}
				}
				if callee.WritesRecv && site.recvSym != nil {
					if g.liftWrite(caller, site, site.recvSym) {
						changed = true
					}
				}
				for glb := range callee.WritesGlobals {
					if !caller.WritesGlobals[glb] {
						caller.WritesGlobals[glb] = true
						changed = true
					}
				}
			}
		}
	}

	for _, s := range g.Summaries {
		sort.Strings(s.Callees)
	}
	return g
}

// liftWrite records that caller writes sym (a symbol inside the
// caller), translating to the caller's own summary terms. Returns true
// if the summary changed.
func (g *Graph) liftWrite(caller *Summary, site *callSite, sym *deps.Symbol) bool {
	switch {
	case site.isGlobal[sym]:
		if !caller.WritesGlobals[sym.Name] {
			caller.WritesGlobals[sym.Name] = true
			return true
		}
	case site.recvOf == sym:
		if !caller.WritesRecv {
			caller.WritesRecv = true
			return true
		}
	default:
		if idx, ok := site.paramOf[sym]; ok && !caller.WritesParams[idx] {
			caller.WritesParams[idx] = true
			return true
		}
	}
	return false
}

// directEffects analyzes one function body for direct writes and
// collects its call sites.
func (g *Graph) directEffects(fn *source.Function) []*callSite {
	res := g.resolutions[fn.Name]
	sum := g.Summaries[fn.Name]

	paramOf := make(map[*deps.Symbol]int)
	var recvSym *deps.Symbol
	idx := 0
	if fn.Decl.Type.Params != nil {
		for _, f := range fn.Decl.Type.Params.List {
			for _, name := range f.Names {
				if s := res.SymbolOf(name); s != nil {
					paramOf[s] = idx
				}
				idx++
			}
		}
	}
	if fn.Decl.Recv != nil {
		for _, f := range fn.Decl.Recv.List {
			for _, name := range f.Names {
				recvSym = res.SymbolOf(name)
			}
		}
	}

	isGlobal := func(s *deps.Symbol) bool { return s != nil && s.Kind == deps.GlobalSym }

	// Direct writes from every statement's access set (without call
	// effects — those are what the propagation adds).
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch s.(type) {
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.LabeledStmt:
			return true // handled via their leaf statements
		}
		for _, a := range deps.Accesses(res, s, nil) {
			if a.Kind != deps.WriteAccess || a.Sym == nil {
				continue
			}
			switch {
			case isGlobal(a.Sym):
				sum.WritesGlobals[a.Sym.Name] = true
			case a.Sym == recvSym && recvSym != nil:
				// Whole-receiver rebinding (t = x) on a value receiver
				// has no caller effect; element/field writes do. For
				// pointer receivers both do; we cannot see pointer-ness
				// reliably, so count element/field writes only.
				if a.Elem || a.Field != "" {
					sum.WritesRecv = true
				}
			default:
				if pidx, ok := paramOf[a.Sym]; ok && (a.Elem || a.Field != "") {
					sum.WritesParams[pidx] = true
				}
			}
		}
		return false
	})

	// Call sites.
	var sites []*callSite
	seen := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || seen[call] {
			return true
		}
		seen[call] = true
		callees, recvSymCall := g.resolveCall(call, res)
		if len(callees) == 0 {
			return true
		}
		site := &callSite{
			caller:   fn.Name,
			callees:  callees,
			recvSym:  recvSymCall,
			paramOf:  paramOf,
			recvOf:   recvSym,
			isGlobal: make(map[*deps.Symbol]bool),
		}
		for _, arg := range call.Args {
			site.argSyms = append(site.argSyms, argSymbol(arg, res))
		}
		for _, s := range site.argSyms {
			if isGlobal(s) {
				site.isGlobal[s] = true
			}
		}
		if isGlobal(site.recvSym) {
			site.isGlobal[site.recvSym] = true
		}
		sites = append(sites, site)
		for _, c := range callees {
			if !containsStr(sum.Callees, c) {
				sum.Callees = append(sum.Callees, c)
			}
		}
		return true
	})
	return sites
}

// resolveCall maps a call expression to candidate program functions.
func (g *Graph) resolveCall(call *ast.CallExpr, res *deps.Resolution) ([]string, *deps.Symbol) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if sym := res.SymbolOf(fun); sym != nil && sym.Kind == deps.FuncSym {
			if _, ok := g.Summaries[sym.Name]; ok {
				return []string{sym.Name}, nil
			}
		}
		return nil, nil
	case *ast.SelectorExpr:
		// Method call x.M(...) — candidates are every Type.M in the
		// program; receiver is x's base symbol. Package-qualified
		// calls (fmt.Println) have an unresolvable base and usually no
		// Type.M match, so they fall out as external.
		var recv *deps.Symbol
		if id, ok := baseIdent(fun.X); ok {
			recv = res.SymbolOf(id)
		}
		if recv == nil {
			return nil, nil // package-qualified or complex receiver: external
		}
		return g.methodIndex[fun.Sel.Name], recv
	}
	return nil, nil
}

// CallEffects implements deps.EffectOracle using the computed
// summaries: unresolved calls contribute nothing (optimistic), resolved
// calls contribute element-writes on the arguments and receiver their
// summary reports.
func (g *Graph) CallEffects(call *ast.CallExpr, res *deps.Resolution) []deps.Access {
	var out []deps.Access
	// Builtin with caller-visible effects.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
		if sym := argSymbol(call.Args[0], res); sym != nil {
			out = append(out, deps.Access{Sym: sym, Kind: deps.WriteAccess, Elem: true, Pos: call.Pos()})
		}
		return out
	}
	callees, recv := g.resolveCall(call, res)
	for _, name := range callees {
		sum, ok := g.Summaries[name]
		if !ok {
			continue
		}
		for idx := range sum.WritesParams {
			if idx < len(call.Args) {
				if sym := argSymbol(call.Args[idx], res); sym != nil {
					out = append(out, deps.Access{Sym: sym, Kind: deps.WriteAccess, Elem: true, Pos: call.Args[idx].Pos()})
				}
			}
		}
		if sum.WritesRecv && recv != nil {
			out = append(out, deps.Access{Sym: recv, Kind: deps.WriteAccess, Elem: true, Pos: call.Pos()})
		}
		for glb := range sum.WritesGlobals {
			out = append(out, deps.Access{Sym: &deps.Symbol{Name: glb, Kind: deps.GlobalSym}, Kind: deps.WriteAccess, Elem: true, Pos: call.Pos()})
		}
	}
	return out
}

// Callees returns the resolved callees of the named function.
func (g *Graph) Callees(name string) []string {
	if s, ok := g.Summaries[name]; ok {
		return s.Callees
	}
	return nil
}

// Reachable returns every function reachable from root (inclusive).
func (g *Graph) Reachable(root string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		if _, ok := g.Summaries[n]; !ok {
			return
		}
		seen[n] = true
		for _, c := range g.Summaries[n].Callees {
			walk(c)
		}
	}
	walk(root)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func argSymbol(arg ast.Expr, res *deps.Resolution) *deps.Symbol {
	if id, ok := baseIdent(arg); ok {
		return res.SymbolOf(id)
	}
	return nil
}

func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr: // &x
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
