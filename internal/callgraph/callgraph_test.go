package callgraph

import (
	"go/ast"
	"testing"

	"patty/internal/deps"
	"patty/internal/source"
)

func build(t *testing.T, src string) (*Graph, *source.Program) {
	t.Helper()
	p, err := source.ParseFile("t.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p), p
}

func TestDirectCalls(t *testing.T) {
	g, _ := build(t, `package p
func A() { B(); C() }
func B() { C() }
func C() {}`)
	if got := g.Callees("A"); len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Fatalf("A callees = %v", got)
	}
	if got := g.Callees("C"); len(got) != 0 {
		t.Fatalf("C callees = %v", got)
	}
}

func TestMethodResolution(t *testing.T) {
	g, _ := build(t, `package p
type T struct{ v int }
func (t *T) M() {}
func F(t *T) { t.M() }`)
	if got := g.Callees("F"); len(got) != 1 || got[0] != "T.M" {
		t.Fatalf("F callees = %v", got)
	}
}

func TestReachable(t *testing.T) {
	g, _ := build(t, `package p
func A() { B() }
func B() { C() }
func C() {}
func D() {}`)
	r := g.Reachable("A")
	if len(r) != 3 {
		t.Fatalf("Reachable(A) = %v", r)
	}
	for _, n := range r {
		if n == "D" {
			t.Fatal("D must not be reachable")
		}
	}
}

func TestDirectParamWrite(t *testing.T) {
	g, _ := build(t, `package p
func Fill(a []int, v int) {
	for i := 0; i < len(a); i++ {
		a[i] = v
	}
}`)
	s := g.Summaries["Fill"]
	if !s.WritesParams[0] {
		t.Fatalf("Fill must write param 0: %+v", s)
	}
	if s.WritesParams[1] {
		t.Fatal("writing the scalar copy v has no caller effect")
	}
	if s.Pure() {
		t.Fatal("Fill is not pure")
	}
}

func TestTransitiveParamWrite(t *testing.T) {
	g, _ := build(t, `package p
func inner(xs []int) { xs[0] = 1 }
func Outer(ys []int) { inner(ys) }`)
	if !g.Summaries["Outer"].WritesParams[0] {
		t.Fatalf("Outer must transitively write param 0: %+v", g.Summaries["Outer"])
	}
}

func TestReceiverWrite(t *testing.T) {
	g, _ := build(t, `package p
type Counter struct{ n int }
func (c *Counter) Inc() { c.n++ }
func (c *Counter) Get() int { return c.n }
func Bump(c *Counter) { c.Inc() }`)
	if !g.Summaries["Counter.Inc"].WritesRecv {
		t.Fatal("Inc writes its receiver")
	}
	if g.Summaries["Counter.Get"].WritesRecv {
		t.Fatal("Get must be receiver-pure")
	}
	if !g.Summaries["Bump"].WritesParams[0] {
		t.Fatalf("Bump mutates its parameter via Inc: %+v", g.Summaries["Bump"])
	}
}

func TestGlobalWritePropagates(t *testing.T) {
	g, _ := build(t, `package p
var counter int
func bump() { counter++ }
func Outer() { bump() }`)
	if !g.Summaries["bump"].WritesGlobals["counter"] {
		t.Fatal("bump writes global")
	}
	if !g.Summaries["Outer"].WritesGlobals["counter"] {
		t.Fatal("Outer transitively writes global")
	}
}

func TestPureFunction(t *testing.T) {
	g, _ := build(t, `package p
func Sq(x int) int { return x * x }
func Twice(x int) int { return Sq(x) + Sq(x) }`)
	if !g.Summaries["Sq"].Pure() || !g.Summaries["Twice"].Pure() {
		t.Fatal("arithmetic helpers must be pure")
	}
}

func TestExternalCallsOptimistic(t *testing.T) {
	g, _ := build(t, `package p
import "fmt"
func F(x int) { fmt.Println(x) }`)
	if !g.Summaries["F"].Pure() {
		t.Fatalf("external calls are optimistic no-ops: %+v", g.Summaries["F"])
	}
}

func TestCallEffectsOracle(t *testing.T) {
	g, prog := build(t, `package p
func fill(a []int) { a[0] = 1 }
func Caller(buf []int) {
	fill(buf)
}`)
	fn := prog.Func("Caller")
	res := deps.Resolve(fn)
	accs := deps.Accesses(res, fn.Stmt(0), g)
	foundWrite := false
	for _, a := range accs {
		if a.Sym != nil && a.Sym.Name == "buf" && a.Kind == deps.WriteAccess {
			foundWrite = true
		}
	}
	if !foundWrite {
		t.Fatalf("oracle must surface the write to buf: %+v", accs)
	}
}

func TestCopyBuiltinEffect(t *testing.T) {
	g, prog := build(t, `package p
func F(dst, src []int) {
	copy(dst, src)
}`)
	fn := prog.Func("F")
	res := deps.Resolve(fn)
	accs := deps.Accesses(res, fn.Stmt(0), g)
	found := false
	for _, a := range accs {
		if a.Sym != nil && a.Sym.Name == "dst" && a.Kind == deps.WriteAccess {
			found = true
		}
	}
	if !found {
		t.Fatalf("copy must write dst: %+v", accs)
	}
}

func TestCallEffectsMethodReceiver(t *testing.T) {
	g, prog := build(t, `package p
type Buf struct{ items []int }
func (b *Buf) Add(x int) { b.items = append(b.items, x) }
func Use(b *Buf) {
	b.Add(1)
}`)
	fn := prog.Func("Use")
	res := deps.Resolve(fn)
	accs := deps.Accesses(res, fn.Stmt(0), g)
	found := false
	for _, a := range accs {
		if a.Sym != nil && a.Sym.Name == "b" && a.Kind == deps.WriteAccess {
			found = true
		}
	}
	if !found {
		t.Fatalf("b.Add must write receiver b: %+v", accs)
	}
}

func TestLoopAnalysisWithOracleVideoShape(t *testing.T) {
	// The paper's Fig. 3a shape: filters are pure, Add mutates the
	// output stream object. Stage E must show the carried dep, the
	// filter stages must not.
	g, prog := build(t, `package p
type Image struct{ px int }
type Stream struct{ imgs []Image }
func (s *Stream) Add(i Image) { s.imgs = append(s.imgs, i) }
func crop(i Image) Image { return Image{i.px * 2} }
func histo(i Image) Image { return Image{i.px + 1} }
func Process(in []Image, out *Stream) {
	for _, img := range in {
		c := crop(img)
		h := histo(img)
		r := Image{c.px + h.px}
		out.Add(r)
	}
}`)
	fn := prog.Func("Process")
	li := deps.AnalyzeLoop(fn, fn.Loops()[0], g)
	carried := li.CarriedDeps()
	if len(carried) == 0 {
		t.Fatal("out.Add must be carried")
	}
	for _, d := range carried {
		if d.Sym.Name != "out" {
			t.Errorf("only out should carry, got %+v", d)
		}
	}
}

func TestIndexHelpers(t *testing.T) {
	if indexByte("a.b", '.') != 1 || indexByte("ab", '.') != -1 {
		t.Fatal("indexByte broken")
	}
	if !containsStr([]string{"a"}, "a") || containsStr(nil, "x") {
		t.Fatal("containsStr broken")
	}
	var e ast.Expr = &ast.BasicLit{}
	if _, ok := baseIdent(e); ok {
		t.Fatal("literal has no base ident")
	}
}
