// Package core orchestrates Patty's pattern-based parallelization
// process (paper Fig. 1): Model Creation → Pattern Analysis →
// Tunable Architecture → Code Transform, plus the correctness
// (parallel unit tests) and performance (tuning configuration)
// artifacts each run produces.
//
// The four operation modes of paper §3 map onto this package:
//
//  1. Automatic parallelization       — Process.Run()
//  2. Architecture-based programming  — tadl directives in the input,
//     Process.TransformAnnotated()
//  3. Library-based programming       — import parrt directly
//  4. Program validation              — Process.Validate / tuning
package core

import (
	"fmt"
	"runtime"
	"sort"

	"patty/internal/model"
	"patty/internal/parrt"
	"patty/internal/pattern"
	"patty/internal/ptest"
	"patty/internal/sched"
	"patty/internal/source"
	"patty/internal/tadl"
	"patty/internal/transform"
	"patty/internal/tuning"
)

// Phase enumerates the process-model stages for progress reporting
// (the IDE plugin's process chart, R1).
type Phase int

const (
	// PhaseModel is "1. Model Creation".
	PhaseModel Phase = iota
	// PhaseAnalysis is "2. Pattern Analysis".
	PhaseAnalysis
	// PhaseArchitecture is "3. Tunable Architecture".
	PhaseArchitecture
	// PhaseTransform is "4. Code Transform".
	PhaseTransform
)

// String names the phase like the paper's process chart.
func (p Phase) String() string {
	switch p {
	case PhaseModel:
		return "1. Model Creation"
	case PhaseAnalysis:
		return "2. Pattern Analysis"
	case PhaseArchitecture:
		return "3. Tunable Architecture"
	case PhaseTransform:
		return "4. Code Transform"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Options configures a process run.
type Options struct {
	// Detection forwards pattern-detection options.
	Detection pattern.Options
	// Workload enables the dynamic half of the semantic model.
	Workload *model.Workload
	// Test sizes the generated parallel unit tests.
	Test ptest.Options
	// Log receives progress lines (nil: silent).
	Log func(string)
}

// Artifacts collects everything a run produces — the per-phase outputs
// the paper's R2 requirement makes visible to the engineer.
type Artifacts struct {
	// Model is the semantic model (phase 1).
	Model *model.Model
	// Report is the detection outcome (phase 2).
	Report *pattern.Report
	// Annotations are the TADL architecture descriptions (phase 3).
	Annotations []tadl.Annotation
	// AnnotatedSources holds each input file with TADL directives
	// inserted (paper Fig. 3b).
	AnnotatedSources map[string]string
	// Outputs holds the generated parallel code, one per candidate
	// (paper Fig. 3d).
	Outputs []*transform.Output
	// TuningConfig is the tuning configuration file content (paper
	// Fig. 3c): every suggested parameter with its initial value.
	TuningConfig *tuning.Config
	// UnitTests are the generated parallel unit tests.
	UnitTests []*ptest.UnitTest
}

// Process drives one parallelization run over a set of sources.
type Process struct {
	Sources map[string]string
	Opt     Options

	prog *source.Program
	arts Artifacts
}

// NewProcess prepares a run over filename→source-text pairs.
func NewProcess(sources map[string]string, opt Options) *Process {
	return &Process{Sources: sources, Opt: opt}
}

func (p *Process) log(format string, args ...any) {
	if p.Opt.Log != nil {
		p.Opt.Log(fmt.Sprintf(format, args...))
	}
}

// Run executes all phases (operation mode 1, automatic
// parallelization) and returns the collected artifacts.
func (p *Process) Run() (*Artifacts, error) {
	if err := p.CreateModel(); err != nil {
		return nil, err
	}
	if err := p.AnalyzePatterns(); err != nil {
		return nil, err
	}
	if err := p.DeriveArchitecture(); err != nil {
		return nil, err
	}
	if err := p.TransformCode(); err != nil {
		return nil, err
	}
	return &p.arts, nil
}

// CreateModel runs phase 1: parse + static analyses (+ dynamic
// enrichment when a workload is configured).
func (p *Process) CreateModel() error {
	p.log("%s", PhaseModel)
	prog, err := source.ParseSources(p.Sources)
	if err != nil {
		return err
	}
	p.prog = prog
	p.arts.Model = model.Build(prog)
	if p.Opt.Workload != nil {
		p.log("  dynamic analysis: executing sample workload")
		if err := p.arts.Model.EnrichDynamic(*p.Opt.Workload); err != nil {
			return err
		}
	}
	return nil
}

// AnalyzePatterns runs phase 2: source-pattern detection.
func (p *Process) AnalyzePatterns() error {
	if p.arts.Model == nil {
		return fmt.Errorf("core: CreateModel must run first")
	}
	p.log("%s", PhaseAnalysis)
	p.arts.Report = pattern.Detect(p.arts.Model, p.Opt.Detection)
	p.log("  %d candidate(s), %d rejection(s)",
		len(p.arts.Report.Candidates), len(p.arts.Report.Rejected))
	return nil
}

// DeriveArchitecture runs phase 3: emit TADL annotations and the
// annotated sources.
func (p *Process) DeriveArchitecture() error {
	if p.arts.Report == nil {
		return fmt.Errorf("core: AnalyzePatterns must run first")
	}
	p.log("%s", PhaseArchitecture)
	p.arts.Annotations = nil
	byFile := make(map[string][]tadl.Annotation)
	for _, c := range p.arts.Report.Candidates {
		p.arts.Annotations = append(p.arts.Annotations, c.Annotation)
		fn := p.prog.Func(c.Fn)
		file := p.prog.Position(fn.File.Pos()).Filename
		byFile[file] = append(byFile[file], c.Annotation)
	}
	p.arts.AnnotatedSources = make(map[string]string, len(p.Sources))
	names := make([]string, 0, len(p.Sources))
	for name := range p.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		annotated, err := tadl.Annotate(p.prog, p.Sources[name], byFile[name])
		if err != nil {
			return err
		}
		p.arts.AnnotatedSources[name] = annotated
	}
	return nil
}

// TransformCode runs phase 4: generate parallel code, the tuning
// configuration and the parallel unit tests.
func (p *Process) TransformCode() error {
	if p.arts.AnnotatedSources == nil {
		return fmt.Errorf("core: DeriveArchitecture must run first")
	}
	p.log("%s", PhaseTransform)
	tr := transform.New(p.prog, p.Sources)
	ps := parrt.NewParams()
	p.arts.Outputs = nil
	for i, ann := range p.arts.Annotations {
		out, err := tr.Function(ann)
		if err != nil {
			// Transformation limits (unsupported loop shapes) are
			// reported, not fatal: the annotation itself remains
			// usable for manual transformation.
			p.log("  skipping %s: %v", ann.Fn, err)
			continue
		}
		p.arts.Outputs = append(p.arts.Outputs, out)
		p.registerSuggestedParams(ps, p.arts.Report.Candidates[i], out)
	}
	p.arts.TuningConfig = tuning.FromParams("patty", ps)

	uts, err := ptest.GenerateAll(p.arts.Model, p.arts.Report, p.Opt.Test)
	if err != nil {
		return err
	}
	p.arts.UnitTests = uts
	p.log("  %d generated file(s), %d tuning parameter(s), %d parallel unit test(s)",
		len(p.arts.Outputs), len(p.arts.TuningConfig.Entries), len(uts))
	return nil
}

// registerSuggestedParams seeds the tuning configuration with the
// detector's PLTP suggestions under the generated pattern's key
// prefix.
func (p *Process) registerSuggestedParams(ps *parrt.Params, c pattern.Candidate, out *transform.Output) {
	prefix := map[string]string{
		"pipeline": "pipeline.",
		"forall":   "parallelfor.",
		"master":   "masterworker.",
	}[out.Kind]
	for _, sug := range c.Params {
		key := prefix + out.PatternName + "." + sug.Name
		if sug.Value < 1 && (sug.Name == "workers" || sug.Name == "chunksize") {
			// "Auto" suggestion for a spawn-sizing parameter: register
			// honest bounds instead of locking a zero — Params.Set
			// rejects non-positive worker counts, and a 0 frozen into
			// the tuning file would later clamp to a single worker.
			ps.Register(parrt.Param{
				Key: key, Kind: parrt.IntParam,
				Min: 1, Max: runtime.NumCPU(), Value: runtime.NumCPU(),
			})
		} else {
			ps.Set(key, sug.Value)
		}
		if param := ps.Lookup(key); param != nil {
			param.Location = c.Pos.String()
		}
	}
}

// TransformAnnotated implements operation mode 2: the engineer wrote
// TADL directives by hand; detection is bypassed entirely.
func (p *Process) TransformAnnotated() (*Artifacts, error) {
	prog, err := source.ParseSources(p.Sources)
	if err != nil {
		return nil, err
	}
	p.prog = prog
	p.arts.Model = model.Build(prog)
	anns, err := tadl.Extract(prog)
	if err != nil {
		return nil, err
	}
	if len(anns) == 0 {
		return nil, fmt.Errorf("core: no //tadl: directives found")
	}
	p.log("%s (from %d hand-written annotation(s))", PhaseTransform, len(anns))
	tr := transform.New(prog, p.Sources)
	ps := parrt.NewParams()
	for _, ann := range anns {
		out, err := tr.Function(ann)
		if err != nil {
			return nil, err
		}
		p.arts.Outputs = append(p.arts.Outputs, out)
	}
	p.arts.Annotations = anns
	p.arts.TuningConfig = tuning.FromParams("patty", ps)
	return &p.arts, nil
}

// ValidationResult is one unit test's exploration outcome.
type ValidationResult struct {
	Test   *ptest.UnitTest
	Result sched.Result
}

// Validate implements operation mode 4's correctness half: run every
// generated parallel unit test on the systematic scheduler.
func (p *Process) Validate(opt sched.Options) ([]ValidationResult, error) {
	if p.arts.UnitTests == nil {
		return nil, fmt.Errorf("core: TransformCode must run first")
	}
	var out []ValidationResult
	for _, ut := range p.arts.UnitTests {
		p.log("validating %s (%s)", ut.Name, ut.Description)
		res := ut.Run(opt)
		out = append(out, ValidationResult{Test: ut, Result: res})
		p.log("  %d schedule(s): %d race(s), %d deadlock(s), %d failure(s)",
			res.Schedules, len(res.Races), len(res.Deadlocks), len(res.Failures))
	}
	return out, nil
}

// Artifacts returns the artifacts collected so far.
func (p *Process) Artifacts() *Artifacts { return &p.arts }

// Program returns the parsed program (after CreateModel).
func (p *Process) Program() *source.Program { return p.prog }
