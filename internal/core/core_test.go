package core

import (
	"strings"
	"testing"

	"patty/internal/sched"
)

const src = `package p

func double(x int) int { return 2 * x }

func Map(a, b []int) {
	for i := 0; i < len(a); i++ {
		b[i] = double(a[i])
	}
}

func Scan(a []int) {
	for i := 1; i < len(a); i++ {
		a[i] = a[i-1] + a[i]
	}
}
`

func TestPhaseStrings(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseModel:        "1. Model Creation",
		PhaseAnalysis:     "2. Pattern Analysis",
		PhaseArchitecture: "3. Tunable Architecture",
		PhaseTransform:    "4. Code Transform",
	} {
		if p.String() != want {
			t.Errorf("%d = %q, want %q", int(p), p.String(), want)
		}
	}
	if Phase(9).String() != "phase(9)" {
		t.Error("unknown phase string")
	}
}

func TestRunCollectsAllArtifacts(t *testing.T) {
	p := NewProcess(map[string]string{"m.go": src}, Options{})
	arts, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if arts.Model == nil || arts.Report == nil || arts.TuningConfig == nil {
		t.Fatal("missing artifacts")
	}
	if len(arts.Report.Candidates) != 1 || len(arts.Report.Rejected) != 1 {
		t.Fatalf("detection: %d candidates, %d rejections", len(arts.Report.Candidates), len(arts.Report.Rejected))
	}
	if len(arts.Outputs) != 1 || !strings.Contains(arts.Outputs[0].Code, "parrt.NewParallelFor") {
		t.Fatalf("outputs: %+v", arts.Outputs)
	}
	if !strings.Contains(arts.AnnotatedSources["m.go"], "//tadl:arch forall") {
		t.Fatal("annotated source missing directive")
	}
	if len(arts.UnitTests) != 1 {
		t.Fatalf("unit tests: %d", len(arts.UnitTests))
	}
	// Tuning keys carry the generated pattern name and a location.
	found := false
	for _, e := range arts.TuningConfig.Entries {
		if strings.HasPrefix(e.Key, "parallelfor.Map.") && strings.Contains(e.Key, "workers") {
			found = true
			if e.Location == "" {
				t.Error("tuning entry missing source location")
			}
		}
	}
	if !found {
		t.Fatalf("tuning entries: %+v", arts.TuningConfig.Entries)
	}
}

func TestZeroCandidateProgramCompletes(t *testing.T) {
	p := NewProcess(map[string]string{"m.go": `package p
func Scan(a []int) {
	for i := 1; i < len(a); i++ {
		a[i] = a[i-1] + a[i]
	}
}
`}, Options{})
	arts, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts.Outputs) != 0 || len(arts.UnitTests) != 0 {
		t.Fatalf("expected empty artifacts, got %+v", arts)
	}
}

func TestValidateOnProcess(t *testing.T) {
	p := NewProcess(map[string]string{"m.go": src}, Options{})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	results, err := p.Validate(sched.Options{PreemptionBound: 2, MaxSchedules: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Result.Buggy() {
		t.Fatalf("validation: %+v", results)
	}
}

func TestTransformAnnotatedRequiresDirectives(t *testing.T) {
	p := NewProcess(map[string]string{"m.go": src}, Options{})
	if _, err := p.TransformAnnotated(); err == nil {
		t.Fatal("expected error without //tadl: directives")
	}
}
