package faultinject

import (
	"reflect"
	"testing"
	"time"
)

// enterOutcome classifies one Enter call.
func enterOutcome(inj *Injector, site string, item int) (kind Kind, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(Fault)
			if !ok {
				panic(r)
			}
			kind, panicked = f.Kind, true
		}
	}()
	inj.Enter(site, item)
	return 0, false
}

func TestDeterministic(t *testing.T) {
	plan := Plan{Seed: 99, PanicRate: 0.1, TransientRate: 0.15, TransientTries: 2}
	a, b := New(plan), New(plan)
	if got, want := a.FatalItems("stage", 500), b.FatalItems("stage", 500); !reflect.DeepEqual(got, want) {
		t.Fatalf("fatal sets diverge: %v vs %v", got, want)
	}
	for i := 0; i < 200; i++ {
		ka, pa := enterOutcome(a, "stage", i)
		kb, pb := enterOutcome(b, "stage", i)
		if ka != kb || pa != pb {
			t.Fatalf("item %d: outcomes diverge (%v,%v) vs (%v,%v)", i, ka, pa, kb, pb)
		}
	}
}

func TestSitesIndependent(t *testing.T) {
	plan := Plan{Seed: 7, PanicRate: 0.2}
	inj := New(plan)
	if reflect.DeepEqual(inj.FatalItems("A", 300), inj.FatalItems("B", 300)) {
		t.Fatal("different sites produced identical fatal sets")
	}
}

func TestFatalMatchesEnter(t *testing.T) {
	inj := New(Plan{Seed: 3, PanicRate: 0.12})
	for i := 0; i < 300; i++ {
		kind, panicked := enterOutcome(inj, "w", i)
		if want := inj.Fatal("w", i); panicked != want || (panicked && kind != Fatal) {
			t.Fatalf("item %d: Enter panicked=%v kind=%v, Fatal()=%v", i, panicked, kind, want)
		}
	}
}

func TestTransientRecoversAfterTries(t *testing.T) {
	inj := New(Plan{Seed: 11, TransientRate: 0.3, TransientTries: 2})
	tested := 0
	for i := 0; i < 200 && tested < 5; i++ {
		if _, panicked := enterOutcome(inj, "s", i); !panicked {
			continue
		}
		tested++
		if _, p2 := enterOutcome(inj, "s", i); !p2 {
			t.Fatalf("item %d: second attempt should still fail", i)
		}
		if _, p3 := enterOutcome(inj, "s", i); p3 {
			t.Fatalf("item %d: third attempt should succeed", i)
		}
	}
	if tested == 0 {
		t.Fatal("no transient fault fired in 200 items at rate 0.3")
	}
	if s := inj.Stats(); s.Transient < int64(tested*2) {
		t.Fatalf("stats undercount transients: %+v", s)
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	inj := New(Plan{Seed: 42, PanicRate: 0.1})
	got := len(inj.FatalItems("x", 2000))
	if got < 120 || got > 280 {
		t.Fatalf("fatal count %d far from expected ~200/2000", got)
	}
}

func TestDelayFires(t *testing.T) {
	inj := New(Plan{Seed: 5, DelayRate: 1, Delay: time.Millisecond})
	start := time.Now()
	inj.Enter("d", 0)
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay did not fire")
	}
	if inj.Stats().Delays != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	inj.Enter("s", 0)
	if inj.Fatal("s", 0) || inj.Stats() != (Stats{}) {
		t.Fatal("nil injector must be inert")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	inj := New(Plan{Seed: 1})
	for i := 0; i < 100; i++ {
		if _, panicked := enterOutcome(inj, "s", i); panicked {
			t.Fatalf("zero plan panicked at item %d", i)
		}
	}
}
