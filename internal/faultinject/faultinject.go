// Package faultinject deterministically injects faults — panics,
// transient errors, delays — into pattern stage and work functions, so
// the fault tolerance of the parrt runtimes can be validated instead of
// asserted. Decisions are pure functions of (plan seed, site, item):
// two runs over the same plan inject exactly the same faults at exactly
// the same places, which is what lets the differential fuzzer predict
// the surviving item set (the oracle minus the fatal items) and lets a
// shrunk reproducer replay byte-identically from a seed.
package faultinject

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patty/internal/seed"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Fatal faults panic on every attempt: a correct SkipItem run
	// drops exactly these items, and no finite retry budget saves them.
	Fatal Kind = iota
	// Transient faults panic on the first Tries attempts of an item and
	// succeed afterwards: a correct RetryItem run with enough retries
	// produces the full result set.
	Transient
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	if k == Fatal {
		return "fatal"
	}
	return "transient"
}

// Fault is the panic value thrown by an injection; typed so tests and
// the fuzzer can tell injected faults from genuine runtime bugs.
type Fault struct {
	Kind Kind
	Site string
	Item int
}

// Error implements the error interface.
func (f Fault) Error() string {
	return fmt.Sprintf("faultinject: %s fault at %q item %d", f.Kind, f.Site, f.Item)
}

// Plan configures an injection campaign. Rates are probabilities in
// [0, 1] evaluated independently per (site, item); a zero-value Plan
// injects nothing.
type Plan struct {
	// Seed drives every decision (via seed.Mix).
	Seed int64
	// PanicRate is the probability of a fatal, always-panicking fault.
	PanicRate float64
	// TransientRate is the probability of a transient fault that
	// panics on the first TransientTries attempts and then succeeds.
	// Fatal wins when both fire.
	TransientRate float64
	// TransientTries is how many attempts a transient fault consumes
	// before succeeding (0 is treated as 1).
	TransientTries int
	// DelayRate is the probability of injecting a Delay-long sleep —
	// slow items exercise back-pressure, reorder buffering and the
	// watchdog's progress accounting without failing anything.
	DelayRate float64
	// Delay is the injected sleep duration.
	Delay time.Duration
}

// Stats counts the faults an Injector actually fired.
type Stats struct {
	Fatal     int64 // fatal panics thrown
	Transient int64 // transient panics thrown (attempts, not items)
	Delays    int64 // delays injected
}

// Injector injects the plan's faults at instrumented sites. Safe for
// concurrent use by the pattern's worker goroutines.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	attempts map[[2]any]int // (site, item) -> attempts seen so far

	fatal     atomic.Int64
	transient atomic.Int64
	delays    atomic.Int64
}

// New returns an injector for plan.
func New(plan Plan) *Injector {
	if plan.TransientTries < 1 {
		plan.TransientTries = 1
	}
	return &Injector{plan: plan, attempts: make(map[[2]any]int)}
}

// roll derives the deterministic decision variable for (site, item,
// salt) as a float in [0, 1).
func (inj *Injector) roll(site string, item int, salt int64) float64 {
	h := inj.plan.Seed
	for _, b := range []byte(site) {
		h = seed.Mix(h, int64(b))
	}
	v := uint64(seed.Mix(h, int64(item)*4+salt))
	return float64(v>>11) / float64(1<<53)
}

// Enter is called at the top of an instrumented stage/work function,
// before any user code runs — so a skipped or retried item has no
// partial side effects to undo. Depending on the plan it panics with a
// Fault, sleeps, or returns immediately.
func (inj *Injector) Enter(site string, item int) {
	if inj == nil {
		return
	}
	if inj.Fatal(site, item) {
		inj.fatal.Add(1)
		panic(Fault{Kind: Fatal, Site: site, Item: item})
	}
	if inj.roll(site, item, 1) < inj.plan.TransientRate {
		key := [2]any{site, item}
		inj.mu.Lock()
		inj.attempts[key]++
		n := inj.attempts[key]
		inj.mu.Unlock()
		if n <= inj.plan.TransientTries {
			inj.transient.Add(1)
			panic(Fault{Kind: Transient, Site: site, Item: item})
		}
	}
	if inj.plan.Delay > 0 && inj.roll(site, item, 2) < inj.plan.DelayRate {
		inj.delays.Add(1)
		time.Sleep(inj.plan.Delay)
	}
}

// Fatal reports whether (site, item) carries a fatal fault — the
// oracle side of Enter, usable without firing anything.
func (inj *Injector) Fatal(site string, item int) bool {
	if inj == nil {
		return false
	}
	return inj.roll(site, item, 0) < inj.plan.PanicRate
}

// FatalItems returns the sorted item indices in [0, n) that carry a
// fatal fault at site: the exact set a correct SkipItem run must drop.
func (inj *Injector) FatalItems(site string, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if inj.Fatal(site, i) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Stats returns the counts of faults fired so far.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return Stats{
		Fatal:     inj.fatal.Load(),
		Transient: inj.transient.Load(),
		Delays:    inj.delays.Load(),
	}
}
