package netchaos

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"patty/internal/obs"
	"patty/internal/ptest"
)

// itemClasses are the fault classes keyed to (site, arrival index) —
// everything except the time-based partition and the server-side
// throttle.
var itemClasses = []string{
	ClassLatency, ClassDrop, ClassTimeout, ClassTruncate,
	ClassCorrupt, ClassDuplicate, ClassReorder,
}

// TestGateSeedCoversAllClasses pins the gate plan's seed: every
// item-keyed fault class must fire within the first GateCoverageBudget
// arrivals at the /shards site. This is what lets `make netchaos`
// assert non-zero fleet.net.injected.* counters for every class
// without flakiness — coverage is a provable property of the seed, not
// a hope about sampling.
func TestGateSeedCoversAllClasses(t *testing.T) {
	inj := New(GatePlan())
	seen := map[string]bool{}
	for item := 0; item < GateCoverageBudget; item++ {
		for _, c := range inj.Decide("/shards", item).Classes() {
			seen[c] = true
		}
	}
	for _, c := range itemClasses {
		if !seen[c] {
			t.Errorf("gate seed %d never fires %q in the first %d arrivals at /shards",
				GateSeed, c, GateCoverageBudget)
		}
	}
	// The partition window must open at t=0 so the first dispatch of a
	// gate run provably lands in it.
	p := GatePlan()
	if p.PartitionAfter != 0 || p.PartitionFor <= 0 {
		t.Fatalf("gate partition window must start at t=0: after=%v for=%v",
			p.PartitionAfter, p.PartitionFor)
	}
	if !p.partitioned(0) {
		t.Fatal("gate plan not partitioned at t=0")
	}
}

// TestDecideDeterministic: decisions are a pure function of
// (seed, site, item) — independent injector instances agree, and a
// different seed disagrees somewhere.
func TestDecideDeterministic(t *testing.T) {
	a, b := New(GatePlan()), New(GatePlan())
	other := GatePlan()
	other.Seed = GateSeed + 1
	c := New(other)
	diff := false
	for item := 0; item < 200; item++ {
		da, db := a.Decide("/shards", item), b.Decide("/shards", item)
		if da != db {
			t.Fatalf("item %d: same seed diverged: %+v vs %+v", item, da, db)
		}
		if da != c.Decide("/shards", item) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical decision streams")
	}
	// Site is part of the key: another path draws another stream.
	same := true
	for item := 0; item < 50; item++ {
		if a.Decide("/shards", item) != a.Decide("/other", item) {
			same = false
		}
	}
	if same {
		t.Fatal("different sites produced identical decision streams")
	}
}

// okServer returns a JSON-answering test server. Callers must `defer
// srv.Close()` AFTER their ptest.NoLeaks defer, so the server's accept
// and connection goroutines are gone before the leak check runs.
func okServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "pad": strings.Repeat("x", 64)})
	}))
}

func post(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(`{"q":1}`))
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

// TestTransportDrop: DropRate 1 fails every request before any bytes
// flow.
func TestTransportDrop(t *testing.T) {
	defer ptest.NoLeaks(t)()
	var hits atomic.Int64
	srv := okServer(t, &hits)
	defer srv.Close()
	inj := New(Plan{Seed: 7, DropRate: 1})
	client := &http.Client{Transport: inj.Transport(nil)}
	if _, err := post(t, client, srv.URL+"/shards"); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}
	if got := inj.Stats().Fired[ClassDrop]; got != 1 {
		t.Fatalf("drop count = %d, want 1", got)
	}
}

// TestTransportTimeout: TimeoutRate 1 black-holes the request until
// the caller's context expires; the server never sees it.
func TestTransportTimeout(t *testing.T) {
	defer ptest.NoLeaks(t)()
	var hits atomic.Int64
	srv := okServer(t, &hits)
	defer srv.Close()
	inj := New(Plan{Seed: 7, TimeoutRate: 1})
	client := &http.Client{Transport: inj.Transport(nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/shards", strings.NewReader("{}"))
	start := time.Now()
	_, err := client.Do(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("timeout returned before the context deadline")
	}
	if hits.Load() != 0 {
		t.Fatal("black-holed request reached the server")
	}
}

// TestTransportTruncate: the body is cut short — JSON decoding fails
// with an unexpected-EOF shape, as a mid-transfer connection loss
// would.
func TestTransportTruncate(t *testing.T) {
	defer ptest.NoLeaks(t)()
	srv := okServer(t, nil)
	defer srv.Close()
	inj := New(Plan{Seed: 7, TruncateRate: 1})
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := post(t, client, srv.URL+"/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if derr := json.NewDecoder(resp.Body).Decode(&v); derr == nil {
		t.Fatal("decoding a truncated body succeeded")
	}
	if got := inj.Stats().Fired[ClassTruncate]; got != 1 {
		t.Fatalf("truncate count = %d, want 1", got)
	}
}

// TestTransportCorrupt: body length is intact but the payload is no
// longer valid JSON.
func TestTransportCorrupt(t *testing.T) {
	defer ptest.NoLeaks(t)()
	srv := okServer(t, nil)
	defer srv.Close()
	inj := New(Plan{Seed: 7, CorruptRate: 1})
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := post(t, client, srv.URL+"/shards")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Fatal("decoding a corrupted body succeeded")
	}
	var syn *json.SyntaxError
	if err := json.Unmarshal(body, &v); !errors.As(err, &syn) {
		t.Fatalf("corruption error = %v, want *json.SyntaxError", err)
	}
}

// TestTransportDuplicate: the request hits the wire twice; the caller
// still gets one well-formed response.
func TestTransportDuplicate(t *testing.T) {
	defer ptest.NoLeaks(t)()
	var hits atomic.Int64
	srv := okServer(t, &hits)
	defer srv.Close()
	inj := New(Plan{Seed: 7, DuplicateRate: 1})
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := post(t, client, srv.URL+"/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("duplicated request's response undecodable: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

// TestTransportPartition: requests inside the window fail with
// ErrPartition and do not consume arrival indices, so the item-keyed
// decision stream stays aligned with requests that reach the wire.
func TestTransportPartition(t *testing.T) {
	defer ptest.NoLeaks(t)()
	var hits atomic.Int64
	srv := okServer(t, &hits)
	defer srv.Close()
	inj := New(Plan{Seed: 7, PartitionAfter: 0, PartitionFor: time.Hour})
	client := &http.Client{Transport: inj.Transport(nil)}
	for i := 0; i < 3; i++ {
		if _, err := post(t, client, srv.URL+"/shards"); !errors.Is(err, ErrPartition) {
			t.Fatalf("err = %v, want ErrPartition", err)
		}
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the server")
	}
	st := inj.Stats()
	if st.Fired[ClassPartition] != 3 {
		t.Fatalf("partition count = %d, want 3", st.Fired[ClassPartition])
	}
	if st.Requests != 0 {
		t.Fatalf("partitioned requests consumed %d arrival indices, want 0", st.Requests)
	}
}

// TestPartitionWindows exercises the window arithmetic directly.
func TestPartitionWindows(t *testing.T) {
	p := Plan{PartitionAfter: 100 * time.Millisecond, PartitionFor: 50 * time.Millisecond, PartitionEvery: 200 * time.Millisecond}
	cases := []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {99 * time.Millisecond, false},
		{100 * time.Millisecond, true}, {149 * time.Millisecond, true},
		{150 * time.Millisecond, false}, {299 * time.Millisecond, false},
		{300 * time.Millisecond, true}, {349 * time.Millisecond, true},
		{350 * time.Millisecond, false},
	}
	for _, c := range cases {
		if got := p.partitioned(c.at); got != c.want {
			t.Errorf("partitioned(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	one := Plan{PartitionFor: 50 * time.Millisecond}
	if !one.partitioned(0) || one.partitioned(60*time.Millisecond) {
		t.Error("single window without PartitionEvery misbehaves")
	}
	if (Plan{}).partitioned(0) {
		t.Error("zero plan partitioned")
	}
}

// TestMiddlewareThrottle: server-side throttle answers 429 with
// Retry-After before the handler runs.
func TestMiddlewareThrottle(t *testing.T) {
	defer ptest.NoLeaks(t)()
	var hits atomic.Int64
	inj := New(Plan{Seed: 7, ThrottleRate: 1})
	srv := httptest.NewServer(inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("throttled response missing Retry-After")
	}
	if hits.Load() != 0 {
		t.Fatal("throttled request reached the handler")
	}
	if got := inj.Stats().Fired[ClassThrottle]; got != 1 {
		t.Fatalf("throttle count = %d, want 1", got)
	}
}

// TestMiddlewareDrop: a server-side drop aborts the response so the
// client sees a transport error, not a clean status.
func TestMiddlewareDrop(t *testing.T) {
	defer ptest.NoLeaks(t)()
	inj := New(Plan{Seed: 7, DropRate: 1})
	srv := httptest.NewServer(inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/shards"); err == nil {
		t.Fatal("server-dropped request succeeded")
	}
}

// TestInstrument: fired faults mirror into fleet.net.injected.*
// counters on the collector.
func TestInstrument(t *testing.T) {
	defer ptest.NoLeaks(t)()
	c := obs.New()
	srv := okServer(t, nil)
	defer srv.Close()
	inj := New(Plan{Seed: 7, CorruptRate: 1}).Instrument(c)
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := post(t, client, srv.URL+"/shards")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	snap := c.Snapshot()
	if snap.Counters["fleet.net.injected."+ClassCorrupt] != 1 {
		t.Fatalf("collector counter = %d, want 1", snap.Counters["fleet.net.injected."+ClassCorrupt])
	}
}

// TestNilInjector: a nil injector is a passthrough on both ends.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if inj.Transport(nil) != http.DefaultTransport {
		t.Fatal("nil injector transport is not the default transport")
	}
	h := http.NewServeMux()
	if got := inj.Middleware(h); got != http.Handler(h) {
		t.Fatal("nil injector middleware is not a passthrough")
	}
	if s := inj.Stats(); s.Requests != 0 || len(s.Fired) != 0 {
		t.Fatalf("nil injector stats = %+v", s)
	}
}

// TestPlanSpecRoundTrip: the ms-based wire form maps onto the
// executable plan.
func TestPlanSpecRoundTrip(t *testing.T) {
	spec := PlanSpec{
		Seed: 42, LatencyRate: 0.5, LatencyMs: 7, DropRate: 0.1,
		TimeoutRate: 0.2, TruncateRate: 0.3, CorruptRate: 0.4,
		DuplicateRate: 0.6, ReorderRate: 0.7, ReorderDelayMs: 9,
		ThrottleRate: 0.8, PartitionAfterMs: 11, PartitionForMs: 13,
		PartitionEveryMs: 17,
	}
	p := spec.Plan()
	if p.Seed != 42 || p.Latency != 7*time.Millisecond ||
		p.ReorderDelay != 9*time.Millisecond ||
		p.PartitionAfter != 11*time.Millisecond ||
		p.PartitionFor != 13*time.Millisecond ||
		p.PartitionEvery != 17*time.Millisecond ||
		p.ThrottleRate != 0.8 || p.DuplicateRate != 0.6 {
		t.Fatalf("PlanSpec.Plan mismatch: %+v", p)
	}
	// And the JSON tags survive a marshal cycle (CLI -net-chaos input).
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back PlanSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Fatalf("PlanSpec JSON round trip: got %+v want %+v", back, spec)
	}
}

// TestMissingClasses lists unfired classes in stable order.
func TestMissingClasses(t *testing.T) {
	inj := New(Plan{Seed: 7})
	if got := len(inj.MissingClasses()); got != len(Classes) {
		t.Fatalf("fresh injector missing %d classes, want %d", got, len(Classes))
	}
	inj.count(ClassDrop)
	for _, c := range inj.MissingClasses() {
		if c == ClassDrop {
			t.Fatal("fired class still reported missing")
		}
	}
}
