// Package netchaos deterministically injects wire faults — latency,
// connection drops, black-hole timeouts, truncated bodies, corrupted
// JSON, duplicated requests, reordered responses, timed partitions and
// synthetic 429 throttles — into HTTP exchanges, so the fleet
// coordinator's hostile-network tolerance can be validated instead of
// asserted. It is the network sibling of internal/faultinject and
// follows the same discipline: every item-keyed decision is a pure
// function of (plan seed, site, arrival index), so the i-th request to
// a site draws exactly the same faults in every run, and a gate can
// prove up front (see Decide and the gate-coverage test) that a fixed
// request budget exercises every fault class.
//
// The injector is pluggable on both ends of the wire: Transport wraps
// the coordinator's http.RoundTripper, Middleware wraps the worker's
// handler. The site key is the URL path only — deliberately excluding
// host and port — so the decision stream does not depend on ephemeral
// test ports and is shared across the workers of one fleet: the n-th
// shard dispatch overall sees the n-th decision, whichever worker it
// lands on.
package netchaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patty/internal/obs"
	"patty/internal/seed"
)

// Fault classes, as they appear in Stats and in the
// fleet.net.injected.<class> metric keys.
const (
	ClassLatency   = "latency"
	ClassDrop      = "drop"
	ClassTimeout   = "timeout"
	ClassTruncate  = "truncate"
	ClassCorrupt   = "corrupt"
	ClassDuplicate = "duplicate"
	ClassReorder   = "reorder"
	ClassPartition = "partition"
	ClassThrottle  = "throttle"
)

// Classes lists every fault class the injector can fire, in a stable
// order.
var Classes = []string{
	ClassLatency, ClassDrop, ClassTimeout, ClassTruncate, ClassCorrupt,
	ClassDuplicate, ClassReorder, ClassPartition, ClassThrottle,
}

// salts separate the per-class decision streams of one (site, item).
const (
	saltDrop = iota + 1
	saltTimeout
	saltLatency
	saltDuplicate
	saltTruncate
	saltCorrupt
	saltReorder
	saltThrottle
)

// Plan configures an injection campaign. Rates are probabilities in
// [0, 1] evaluated independently per (site, arrival index); the zero
// value injects nothing. Client-side (Transport) classes: latency,
// drop, timeout, truncate, corrupt, duplicate, reorder, partition.
// Server-side (Middleware) classes: throttle, latency, drop.
type Plan struct {
	// Seed drives every item-keyed decision (via seed.Mix).
	Seed int64

	// LatencyRate injects a Latency-long sleep before the request is
	// forwarded (client) or handled (server).
	LatencyRate float64
	Latency     time.Duration

	// DropRate fails the exchange outright: the client transport
	// returns a connection-reset-shaped error, the server middleware
	// aborts the response mid-flight.
	DropRate float64

	// TimeoutRate black-holes the request on the client side: the
	// transport holds it until the request context (the coordinator's
	// lease TTL) expires. No bytes ever flow.
	TimeoutRate float64

	// TruncateRate cuts the response body in half, producing the
	// unexpected-EOF shape a mid-transfer connection loss leaves.
	TruncateRate float64

	// CorruptRate overwrites bytes inside the response body, producing
	// syntactically invalid JSON with an intact HTTP envelope.
	CorruptRate float64

	// DuplicateRate sends the request twice (the second send reuses
	// GetBody); the caller sees the second response. Exercises worker
	// idempotency and the coordinator's evaluation dedup.
	DuplicateRate float64

	// ReorderRate delays an already-received response by ReorderDelay
	// before handing it to the caller, so responses complete out of
	// send order.
	ReorderRate  float64
	ReorderDelay time.Duration

	// ThrottleRate (server middleware) answers 429 with Retry-After: 1
	// before the real handler runs — the synthetic quota refusal the
	// coordinator must honor with jittered backoff.
	ThrottleRate float64

	// Timed partition: every client request arriving inside a window
	// fails fast with ErrPartition, consuming no arrival index. The
	// first window opens PartitionAfter after the injector is built and
	// lasts PartitionFor; with PartitionEvery > 0 it repeats at that
	// period.
	PartitionAfter time.Duration
	PartitionFor   time.Duration
	PartitionEvery time.Duration
}

// PlanSpec is the JSON/CLI wire form of a Plan, with durations in
// milliseconds (`patty tune -net-chaos`, `patty worker -chaos`, serve
// job specs).
type PlanSpec struct {
	Seed             int64   `json:"seed"`
	LatencyRate      float64 `json:"latency_rate,omitempty"`
	LatencyMs        int     `json:"latency_ms,omitempty"`
	DropRate         float64 `json:"drop_rate,omitempty"`
	TimeoutRate      float64 `json:"timeout_rate,omitempty"`
	TruncateRate     float64 `json:"truncate_rate,omitempty"`
	CorruptRate      float64 `json:"corrupt_rate,omitempty"`
	DuplicateRate    float64 `json:"duplicate_rate,omitempty"`
	ReorderRate      float64 `json:"reorder_rate,omitempty"`
	ReorderDelayMs   int     `json:"reorder_delay_ms,omitempty"`
	ThrottleRate     float64 `json:"throttle_rate,omitempty"`
	PartitionAfterMs int     `json:"partition_after_ms,omitempty"`
	PartitionForMs   int     `json:"partition_for_ms,omitempty"`
	PartitionEveryMs int     `json:"partition_every_ms,omitempty"`
}

// Plan converts the wire form into an executable Plan.
func (s PlanSpec) Plan() Plan {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return Plan{
		Seed:        s.Seed,
		LatencyRate: s.LatencyRate, Latency: ms(s.LatencyMs),
		DropRate:      s.DropRate,
		TimeoutRate:   s.TimeoutRate,
		TruncateRate:  s.TruncateRate,
		CorruptRate:   s.CorruptRate,
		DuplicateRate: s.DuplicateRate,
		ReorderRate:   s.ReorderRate, ReorderDelay: ms(s.ReorderDelayMs),
		ThrottleRate:   s.ThrottleRate,
		PartitionAfter: ms(s.PartitionAfterMs),
		PartitionFor:   ms(s.PartitionForMs),
		PartitionEvery: ms(s.PartitionEveryMs),
	}
}

// GateSpec is the canonical hostile-network plan of the `make
// netchaos` gate, shared by the in-package fleet gate and the CLI
// chaos leg. Its seed is pinned by TestGateSeedCoversAllClasses: with
// these rates, every item-keyed fault class fires at least once within
// the first GateCoverageBudget arrivals at /shards, and the partition
// window opens at t=0 so the very first dispatch of a run provably
// lands in it.
func GateSpec() PlanSpec {
	return PlanSpec{
		Seed:             GateSeed,
		LatencyRate:      0.25,
		LatencyMs:        2,
		DropRate:         0.12,
		TimeoutRate:      0.08,
		TruncateRate:     0.12,
		CorruptRate:      0.12,
		DuplicateRate:    0.12,
		ReorderRate:      0.15,
		ReorderDelayMs:   3,
		ThrottleRate:     0.2,
		PartitionAfterMs: 0,
		PartitionForMs:   60,
		PartitionEveryMs: 700,
	}
}

// GateSeed is the pinned seed of GateSpec; see GateSpec.
const GateSeed int64 = 1

// GateCoverageBudget is the arrival count within which GateSpec
// provably fires every item-keyed client fault class (enforced by
// TestGateSeedCoversAllClasses).
const GateCoverageBudget = 15

// GatePlan is GateSpec as an executable Plan.
func GatePlan() Plan { return GateSpec().Plan() }

// ErrPartition is the error a partitioned client request fails with.
var ErrPartition = fmt.Errorf("netchaos: network partition")

// injectedError marks transport failures the injector manufactured.
type injectedError struct {
	class string
	site  string
	item  int
}

func (e injectedError) Error() string {
	return fmt.Sprintf("netchaos: injected %s at %q item %d", e.class, e.site, e.item)
}

// Decision is the item-keyed fault verdict for one (site, arrival)
// pair, with class precedence already applied: a drop masks everything
// after it, a timeout masks everything but the drop roll, truncation
// masks corruption. Latency, duplicate and reorder stack with the body
// faults.
type Decision struct {
	Drop      bool
	Timeout   bool
	Latency   bool
	Duplicate bool
	Truncate  bool
	Corrupt   bool
	Reorder   bool
}

// Classes returns the class names the decision fires, in Classes
// order.
func (d Decision) Classes() []string {
	var out []string
	add := func(on bool, c string) {
		if on {
			out = append(out, c)
		}
	}
	add(d.Latency, ClassLatency)
	add(d.Drop, ClassDrop)
	add(d.Timeout, ClassTimeout)
	add(d.Truncate, ClassTruncate)
	add(d.Corrupt, ClassCorrupt)
	add(d.Duplicate, ClassDuplicate)
	add(d.Reorder, ClassReorder)
	return out
}

// Stats is a point-in-time copy of the per-class fire counts, plus the
// total arrivals that consumed an index.
type Stats struct {
	Requests int64
	Fired    map[string]int64
}

// Injector injects the plan's faults. Safe for concurrent use; one
// injector may serve a client transport and a server middleware at
// once (their sites are disjoint: client sites are URL paths, server
// sites are "srv:" + path).
type Injector struct {
	plan  Plan
	start time.Time

	mu  sync.Mutex
	seq map[string]int

	requests atomic.Int64
	fired    map[string]*atomic.Int64
	inst     map[string]*obs.Counter
}

// New returns an injector for plan. The partition clock starts now.
func New(plan Plan) *Injector {
	inj := &Injector{
		plan:  plan,
		start: time.Now(),
		seq:   make(map[string]int),
		fired: make(map[string]*atomic.Int64),
	}
	for _, c := range Classes {
		inj.fired[c] = &atomic.Int64{}
	}
	return inj
}

// Instrument mirrors every fired fault into c as a
// fleet.net.injected.<class> counter, the observability half of the
// netchaos gate ("every injected fault class is visible in the
// fleet.net.* grammar"). Returns the injector for chaining.
func (inj *Injector) Instrument(c *obs.Collector) *Injector {
	if c == nil {
		return inj
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.inst = make(map[string]*obs.Counter, len(Classes))
	for _, class := range Classes {
		inj.inst[class] = c.Counter("fleet.net.injected." + class)
	}
	return inj
}

// Stats returns the per-class fire counts so far.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{Fired: map[string]int64{}}
	}
	s := Stats{Requests: inj.requests.Load(), Fired: make(map[string]int64, len(inj.fired))}
	for c, n := range inj.fired {
		s.Fired[c] = n.Load()
	}
	return s
}

// MissingClasses returns the fault classes that have not fired yet, in
// stable order — the gate asserts it is empty after a chaos run.
func (inj *Injector) MissingClasses() []string {
	st := inj.Stats()
	var out []string
	for _, c := range Classes {
		if st.Fired[c] == 0 {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func (inj *Injector) count(class string) {
	inj.fired[class].Add(1)
	inj.mu.Lock()
	ctr := inj.inst[class]
	inj.mu.Unlock()
	ctr.Inc() // nil-safe
}

// roll derives the deterministic decision variable for (site, item,
// salt) as a float in [0, 1) — the same derivation faultinject uses.
func (inj *Injector) roll(site string, item int, salt int64) float64 {
	h := inj.plan.Seed
	for _, b := range []byte(site) {
		h = seed.Mix(h, int64(b))
	}
	v := uint64(seed.Mix(h, int64(item)*16+salt))
	return float64(v>>11) / float64(1<<53)
}

// Decide returns the item-keyed fault verdict for (site, item) — the
// oracle side of the transport, usable without firing anything. The
// gate-coverage test runs it over a fixed arrival budget to prove the
// pinned seed exercises every class.
func (inj *Injector) Decide(site string, item int) Decision {
	p := inj.plan
	var d Decision
	if inj.roll(site, item, saltDrop) < p.DropRate {
		d.Drop = true
		return d
	}
	if inj.roll(site, item, saltTimeout) < p.TimeoutRate {
		d.Timeout = true
		return d
	}
	d.Latency = p.Latency > 0 && inj.roll(site, item, saltLatency) < p.LatencyRate
	d.Duplicate = inj.roll(site, item, saltDuplicate) < p.DuplicateRate
	d.Truncate = inj.roll(site, item, saltTruncate) < p.TruncateRate
	d.Corrupt = !d.Truncate && inj.roll(site, item, saltCorrupt) < p.CorruptRate
	d.Reorder = p.ReorderDelay > 0 && inj.roll(site, item, saltReorder) < p.ReorderRate
	return d
}

// next assigns the next arrival index for site.
func (inj *Injector) next(site string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	item := inj.seq[site]
	inj.seq[site]++
	return item
}

// partitioned reports whether the timed partition is open at offset t
// from the injector's start.
func (p Plan) partitioned(t time.Duration) bool {
	if p.PartitionFor <= 0 {
		return false
	}
	rel := t - p.PartitionAfter
	if rel < 0 {
		return false
	}
	if p.PartitionEvery > 0 {
		rel %= p.PartitionEvery
	}
	return rel < p.PartitionFor
}

// Transport wraps base (nil: http.DefaultTransport) with the
// client-side fault classes. Partitioned requests fail without
// consuming an arrival index, so the item-keyed decision stream stays
// aligned with the requests that actually reach the wire.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if inj == nil {
		if base == nil {
			return http.DefaultTransport
		}
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: inj, base: base}
}

type transport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inj, p := t.inj, t.inj.plan
	ctx := req.Context()
	site := req.URL.Path
	if site == "" {
		site = "/"
	}
	if p.partitioned(time.Since(inj.start)) {
		inj.count(ClassPartition)
		return nil, fmt.Errorf("%w: %s unreachable", ErrPartition, req.URL.Host)
	}
	item := inj.next(site)
	inj.requests.Add(1)
	d := inj.Decide(site, item)
	if d.Drop {
		inj.count(ClassDrop)
		return nil, injectedError{class: ClassDrop, site: site, item: item}
	}
	if d.Timeout {
		// Black hole: no bytes flow until the caller's deadline (the
		// coordinator's lease TTL) gives up on us.
		inj.count(ClassTimeout)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if d.Latency {
		inj.count(ClassLatency)
		sleepCtx(ctx, p.Latency)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Duplicate && req.GetBody != nil {
		// The same request hits the wire twice; the caller sees the
		// second answer. A correct worker (idempotent evaluation,
		// journal cache) answers both identically.
		inj.count(ClassDuplicate)
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBuffer))
		resp.Body.Close()
		dup := req.Clone(ctx)
		dup.Body, err = req.GetBody()
		if err != nil {
			return nil, err
		}
		resp, err = t.base.RoundTrip(dup)
		if err != nil {
			return nil, err
		}
	}
	switch {
	case d.Truncate:
		inj.count(ClassTruncate)
		resp = truncateBody(resp)
	case d.Corrupt:
		inj.count(ClassCorrupt)
		resp = corruptBody(resp, inj.plan.Seed, item)
	}
	if d.Reorder {
		// Hold a finished response back so it completes after
		// later-sent ones — reordering as the merge layer sees it.
		inj.count(ClassReorder)
		sleepCtx(ctx, p.ReorderDelay)
	}
	return resp, nil
}

// maxBodyBuffer bounds the body bytes the injector will buffer when
// rewriting a response (comfortably above fleet.MaxBodyBytes).
const maxBodyBuffer = 4 << 20

// truncateBody replaces the response body with its first half — the
// shape a connection cut mid-transfer leaves: valid envelope, JSON
// that ends mid-token.
func truncateBody(resp *http.Response) *http.Response {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBuffer))
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(b[:len(b)/2]))
	resp.ContentLength = -1
	return resp
}

// corruptBody deterministically overwrites three body bytes with NUL —
// an intact length, a broken payload — so the decoder sees corruption
// rather than truncation.
func corruptBody(resp *http.Response, planSeed int64, item int) *http.Response {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBuffer))
	resp.Body.Close()
	if len(b) > 0 {
		for i := 0; i < 3; i++ {
			pos := int(uint64(seed.Mix(planSeed, int64(item)*8+int64(i))) % uint64(len(b)))
			b[pos] = 0x00
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(b))
	resp.ContentLength = int64(len(b))
	return resp
}

// Middleware wraps a server handler with the server-side fault
// classes: throttle (429 + Retry-After before the handler runs),
// latency, and drop (response aborted mid-flight). Server sites are
// "srv:" + path, so a shared injector keeps client and server decision
// streams independent.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := inj.plan
		site := "srv:" + r.URL.Path
		item := inj.next(site)
		if inj.roll(site, item, saltThrottle) < p.ThrottleRate {
			inj.count(ClassThrottle)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "netchaos: injected throttle", http.StatusTooManyRequests)
			return
		}
		if p.Latency > 0 && inj.roll(site, item, saltLatency) < p.LatencyRate {
			inj.count(ClassLatency)
			sleepCtx(r.Context(), p.Latency)
		}
		if inj.roll(site, item, saltDrop) < p.DropRate {
			inj.count(ClassDrop)
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
