package report

import (
	"fmt"
	"strings"

	"patty/internal/obs"
)

// BottleneckTable renders the per-pattern digest of a runtime
// observability snapshot (internal/obs): for every pattern instance
// one summary row — bottleneck stage/worker, its utilization, queue
// pressure and the busy-time imbalance ratio — followed by a
// per-stage detail block for each pipeline. This is the textual
// analogue of the paper's runtime-distribution overlay (Fig. 4c),
// computed from live measurements instead of the profiler's virtual
// ticks, and the human-readable view of the metrics trace the
// auto-tuner records per configuration.
func BottleneckTable(analyses []obs.PatternAnalysis) string {
	var b strings.Builder
	b.WriteString("=== runtime bottleneck table (per pattern, from internal/obs) ===\n")
	if len(analyses) == 0 {
		b.WriteString("no runtime metrics recorded (patterns not instrumented)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s %-13s %8s %10s %-18s %5s %6s %10s\n",
		"pattern", "kind", "items", "wall(ms)", "bottleneck", "util", "queue", "imbalance")
	for _, a := range analyses {
		sat := ""
		if a.Saturated() {
			sat = " [saturated]"
		}
		fmt.Fprintf(&b, "%-14s %-13s %8d %10.2f %-18s %5.2f %6.2f %9.2fx%s\n",
			a.Name, a.Kind, a.Items, float64(a.WallNs)/1e6,
			a.Bottleneck(), a.BottleneckUtil, a.QueuePressure, a.Imbalance, sat)
	}
	faulted := false
	for _, a := range analyses {
		if a.Faulted() {
			faulted = true
		}
	}
	if faulted {
		fmt.Fprintf(&b, "\nfaults (per pattern: errors / retries / timeouts / drained):\n")
		for _, a := range analyses {
			if !a.Faulted() {
				continue
			}
			fmt.Fprintf(&b, "   %-14s %-13s %6d %9d %10d %9d\n",
				a.Name, a.Kind, a.FaultErrors, a.FaultRetries, a.FaultTimeouts, a.FaultDrained)
		}
	}
	for _, a := range analyses {
		switch a.Kind {
		case obs.KindPipeline:
			fmt.Fprintf(&b, "\npipeline %q stages:\n", a.Name)
			fmt.Fprintf(&b, "   %-10s %4s %5s %6s %10s %10s %12s\n",
				"stage", "repl", "util", "queue", "p50(us)", "p95(us)", "blocked(ms)")
			for _, st := range a.Stages {
				mark := "   "
				if st.Index == a.BottleneckStage {
					mark = "-> "
				}
				fmt.Fprintf(&b, "%s%-10s %4d %5.2f %6.2f %10.1f %10.1f %12.2f\n",
					mark, st.Name, st.Replicas, st.Utilization, st.QueueFill,
					st.Service.Quantile(0.5)/1e3, st.Service.Quantile(0.95)/1e3,
					float64(st.BlockedNs)/1e6)
			}
			if a.ReorderHeld > 0 || a.ReorderPending > 0 {
				fmt.Fprintf(&b, "   reorder buffer: %d element(s) held out of order (pending at snapshot: %d)\n",
					a.ReorderHeld, a.ReorderPending)
			}
		case obs.KindMasterWorker, obs.KindParallelFor:
			if len(a.Workers) == 0 {
				continue
			}
			var busiest, idlest int64
			for i, w := range a.Workers {
				if i == 0 || w.BusyNs > busiest {
					busiest = w.BusyNs
				}
				if i == 0 || w.BusyNs < idlest {
					idlest = w.BusyNs
				}
			}
			fmt.Fprintf(&b, "\n%s %q workers: %d, busiest %.2f ms, laziest %.2f ms (imbalance %.2fx)\n",
				a.Kind, a.Name, len(a.Workers),
				float64(busiest)/1e6, float64(idlest)/1e6, a.Imbalance)
			if a.ChunkNs.Count > 0 {
				fmt.Fprintf(&b, "   chunks: %d, latency p50 %.1f us, p95 %.1f us, max %.1f us\n",
					a.ChunkNs.Count, a.ChunkNs.Quantile(0.5)/1e3,
					a.ChunkNs.Quantile(0.95)/1e3, float64(a.ChunkNs.Max)/1e3)
			}
		}
	}
	return b.String()
}
