package report

import (
	"strings"
	"testing"

	"patty/internal/cfg"
	"patty/internal/corpus"
	"patty/internal/model"
	"patty/internal/pattern"
	"patty/internal/source"
)

const src = `package p
type Stream struct{ out []int }
func (s *Stream) Add(v int) { s.out = append(s.out, v) }
func heavy(x int) int {
	v := 0
	for k := 0; k < 60; k++ {
		v += k * x
	}
	return v
}
func Process(in []int, s *Stream) {
	for _, x := range in {
		h := heavy(x)
		s.Add(h)
	}
}
func Sum(a []int) int {
	t := 0
	for i := 0; i < len(a); i++ {
		t += a[i]
	}
	return t
}
`

func buildAll(t *testing.T) (*source.Program, *model.Model, *pattern.Report) {
	t.Helper()
	prog, err := source.ParseFile("t.go", src)
	if err != nil {
		t.Fatal(err)
	}
	m := model.Build(prog)
	rep := pattern.Detect(m, pattern.Options{SkipNested: true})
	return prog, m, rep
}

func TestCFGDot(t *testing.T) {
	prog, _, _ := buildAll(t)
	dot := CFGDot(cfg.Build(prog.Func("Sum")))
	for _, want := range []string{"digraph", "entry", "exit", "diamond", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("CFG dot missing %q:\n%s", want, dot)
		}
	}
}

func TestCallGraphDot(t *testing.T) {
	_, m, _ := buildAll(t)
	dot := CallGraphDot(m)
	for _, want := range []string{`"Process" -> "heavy"`, `"Process" -> "Stream.Add"`, "lightsalmon"} {
		if !strings.Contains(dot, want) {
			t.Errorf("callgraph dot missing %q:\n%s", want, dot)
		}
	}
	// heavy is pure: must not be highlighted.
	for _, line := range strings.Split(dot, "\n") {
		if strings.Contains(line, `"heavy" [`) && strings.Contains(line, "lightsalmon") {
			t.Errorf("pure function highlighted: %s", line)
		}
	}
}

func TestModelSummaryStatic(t *testing.T) {
	_, m, _ := buildAll(t)
	s := ModelSummary(m)
	for _, want := range []string{"static only", "loop Process", "loop Sum", "reduction: t", "carried dependences"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestModelSummaryDynamic(t *testing.T) {
	p := corpus.Get("video")
	m, err := p.BuildModel(true)
	if err != nil {
		t.Fatal(err)
	}
	s := ModelSummary(m)
	for _, want := range []string{"profiled", "dynamic:", "hot share", "effective (optimistic)"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestDetectionReportAndStageGraph(t *testing.T) {
	prog, _, rep := buildAll(t)
	out := DetectionReport(prog, rep)
	for _, want := range []string{"detection report", "candidate", "TADL:", "stage"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var pipeCand *pattern.Candidate
	for i := range rep.Candidates {
		if rep.Candidates[i].Kind == pattern.PipelineKind {
			pipeCand = &rep.Candidates[i]
		}
	}
	if pipeCand == nil {
		t.Fatalf("no pipeline candidate in %+v", rep.Candidates)
	}
	dot := StageGraphDot(*pipeCand)
	for _, want := range []string{"StreamGenerator", "gen -> A", "A -> B"} {
		if !strings.Contains(dot, want) {
			t.Errorf("stage graph missing %q:\n%s", want, dot)
		}
	}
	// The ordered Add stage is not replicable: highlighted salmon.
	if !strings.Contains(dot, "lightsalmon") {
		t.Errorf("non-replicable stage not highlighted:\n%s", dot)
	}
}

func TestShareBar(t *testing.T) {
	if shareBar(0, 10) != ".........." {
		t.Fatal("zero share bar")
	}
	if shareBar(1, 10) != "##########" {
		t.Fatal("full share bar")
	}
	if shareBar(2, 10) != "##########" {
		t.Fatal("overflow share bar must clamp")
	}
	if got := shareBar(0.5, 10); got != "#####....." {
		t.Fatalf("half bar = %q", got)
	}
}
