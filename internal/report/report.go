// Package report renders the per-phase artifacts of the process model
// for humans — requirement R2 of paper §3: "visualize the phase
// artifacts after each step". The Visual Studio overlays become text
// and Graphviz DOT renderings:
//
//   - CFG / call graph as DOT (ParaGraph- and HTGviz-style views the
//     related-work section compares against)
//   - the semantic model as a per-loop dependence summary
//   - detection reports with per-rule reasoning
//   - the pipeline stage graph of a candidate, with runtime shares
//     (the color-overlay of paper Fig. 4b)
package report

import (
	"fmt"
	"sort"
	"strings"

	"patty/internal/cfg"
	"patty/internal/model"
	"patty/internal/pattern"
	"patty/internal/source"
)

// CFGDot renders a function's control flow graph as Graphviz DOT.
func CFGDot(g *cfg.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", g.Fn.Name)
	for _, blk := range g.Blocks {
		label := fmt.Sprintf("b%d (%s)", blk.ID, blk.Kind)
		if n := len(blk.Stmts); n > 0 {
			label += fmt.Sprintf("\\n%d stmt(s)", n)
		}
		shape := ""
		switch blk.Kind {
		case cfg.EntryBlock, cfg.ExitBlock:
			shape = ", shape=ellipse"
		case cfg.CondBlock:
			shape = ", shape=diamond"
		}
		fmt.Fprintf(&b, "  b%d [label=\"%s\"%s];\n", blk.ID, label, shape)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, "  b%d -> b%d;\n", blk.ID, s.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// CallGraphDot renders the program call graph as Graphviz DOT, with
// impure functions (caller-visible side effects) highlighted —
// the information ParaGraph lacks per §6.
func CallGraphDot(m *model.Model) string {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	names := make([]string, 0, len(m.CG.Summaries))
	for name := range m.CG.Summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := m.CG.Summaries[name]
		attr := ""
		if !s.Pure() {
			attr = ", style=filled, fillcolor=lightsalmon"
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"%s];\n", name, name, attr)
	}
	for _, name := range names {
		for _, callee := range m.CG.Summaries[name].Callees {
			fmt.Fprintf(&b, "  %q -> %q;\n", name, callee)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ModelSummary renders the semantic model: per function, each loop
// with its static and dynamic dependence verdicts — the cross-product
// view of paper §2.1.
func ModelSummary(m *model.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "semantic model: %d function(s)", len(m.Funcs))
	if m.Profiled {
		fmt.Fprintf(&b, ", profiled (%d virtual ticks total)", m.TotalTime)
	} else {
		b.WriteString(", static only")
	}
	b.WriteString("\n")
	for _, lm := range m.AllLoops() {
		pos := m.Prog.Position(lm.Loop.Pos())
		fmt.Fprintf(&b, "\nloop %s #%d at %s", lm.Fn.Name, lm.LoopID, pos)
		if lm.Nested {
			b.WriteString(" (nested)")
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "  body: %d top-level statement(s)\n", len(lm.Static.Body))
		if iv := lm.Static.IndexVar; iv != nil {
			fmt.Fprintf(&b, "  induction variable: %s\n", iv.Name)
		}
		if n := len(lm.Static.Control); n > 0 {
			fmt.Fprintf(&b, "  control: %d stream-breaking statement(s) (PLCD)\n", n)
		}
		for _, r := range lm.Static.Reductions {
			fmt.Fprintf(&b, "  reduction: %s (%s)\n", r.Sym.Name, r.Op)
		}
		static := lm.Static.CarriedDeps()
		fmt.Fprintf(&b, "  static carried dependences: %d\n", len(static))
		for _, d := range static {
			fmt.Fprintf(&b, "    stmt %d -> stmt %d on %s (%s, %s)\n", d.From, d.To, d.Sym.Name, d.Kind, d.Reason)
		}
		if lm.Dynamic != nil {
			fmt.Fprintf(&b, "  dynamic: %d iteration(s), %d observed carried pair(s), hot share %.1f%%\n",
				lm.Dynamic.Iters, len(lm.Dynamic.Carried), lm.HotShare*100)
			eff := lm.CarriedDeps()
			fmt.Fprintf(&b, "  effective (optimistic) carried dependences: %d\n", len(eff))
		}
	}
	return b.String()
}

// shareBar renders a proportional ASCII bar for runtime shares.
func shareBar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// CandidateDetail renders one detection candidate with its stage
// structure and runtime distribution — the text analogue of the visual
// pattern overlay (paper Fig. 4b).
func CandidateDetail(prog *source.Program, c pattern.Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s candidate at %s (score %.2f)\n", c.Kind, c.Pos, c.Score)
	fmt.Fprintf(&b, "TADL: %s\n", c.Arch)
	for _, st := range c.Stages {
		marks := ""
		if st.Replicable {
			marks += " replicable"
		}
		if st.ReplicationSuggested {
			marks += " [replicate]"
		}
		fmt.Fprintf(&b, "  stage %-3s %s %5.1f%%%s\n", st.Label, shareBar(st.Share, 24), st.Share*100, marks)
		fn := prog.Func(c.Fn)
		for _, id := range st.Stmts {
			if fn != nil {
				fmt.Fprintf(&b, "        stmt %-3d %s\n", id, prog.Position(fn.Stmt(id).Pos()))
			}
		}
	}
	for _, r := range c.Reasons {
		fmt.Fprintf(&b, "  - %s\n", r)
	}
	return b.String()
}

// DetectionReport renders the full phase-2 artifact.
func DetectionReport(prog *source.Program, rep *pattern.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== detection report: %d candidate(s), %d rejection(s) ===\n\n",
		len(rep.Candidates), len(rep.Rejected))
	for _, c := range rep.Candidates {
		b.WriteString(CandidateDetail(prog, c))
		b.WriteString("\n")
	}
	if len(rep.Rejected) > 0 {
		b.WriteString("rejected locations:\n")
		for _, r := range rep.Rejected {
			fmt.Fprintf(&b, "  %-24s %s\n", r.Pos, r.Reason)
		}
	}
	return b.String()
}

// StageGraphDot renders a pipeline candidate's stage graph as DOT,
// with replication-suggested stages highlighted.
func StageGraphDot(c pattern.Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph stages {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	b.WriteString("  gen [label=\"StreamGenerator\", shape=ellipse];\n")
	prev := "gen"
	for _, st := range c.Stages {
		attr := ""
		if st.ReplicationSuggested {
			attr = ", style=filled, fillcolor=palegreen, peripheries=2"
		} else if !st.Replicable {
			attr = ", style=filled, fillcolor=lightsalmon"
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\\n%.0f%%\"%s];\n", st.Label, st.Label, st.Share*100, attr)
		fmt.Fprintf(&b, "  %s -> %s;\n", prev, st.Label)
		prev = st.Label
	}
	b.WriteString("}\n")
	return b.String()
}
