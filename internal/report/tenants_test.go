package report

import (
	"strings"
	"testing"

	"patty/internal/obs"
)

func TestTenantTable(t *testing.T) {
	c := obs.New()
	c.Counter("jobs.tenant.hog.submitted").Add(100)
	c.Counter("jobs.tenant.hog.done").Add(40)
	c.Counter("jobs.tenant.hog.quota").Add(60)
	c.Counter("jobs.tenant.modest.submitted").Add(30)
	c.Counter("jobs.tenant.modest.done").Add(30)
	out := TenantTable(obs.AnalyzeTenants(c.Snapshot()))
	for _, want := range []string{"tenant", "hog", "modest", "429s", "fairness", "1.33"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if got := TenantTable(nil); got != "" {
		t.Fatalf("empty table = %q", got)
	}
}
