package report

import (
	"context"
	"strings"
	"testing"

	"patty/internal/obs"
	"patty/internal/parrt"
)

// busy spins for roughly cost units of arithmetic; unlike sleeping it
// accumulates real service time, so the utilization math has signal.
func busy(cost int) int {
	acc := 1
	for i := 0; i < cost*400; i++ {
		acc = acc*31 + i
	}
	return acc
}

// TestBottleneckTableFromLiveRun drives all three instrumented
// pattern runtimes and checks the rendered table names each instance
// with its headline columns — the end-to-end path patty eval uses.
func TestBottleneckTableFromLiveRun(t *testing.T) {
	c := obs.New()

	type item struct{ v int }
	ps := parrt.NewParams()
	pipe := parrt.NewPipeline("vid", ps,
		parrt.Stage[item]{Name: "decode", Replicable: true, Fn: func(it *item) { it.v += busy(1) }},
		parrt.Stage[item]{Name: "filter", Replicable: true, Fn: func(it *item) { it.v += busy(8) }},
		parrt.Stage[item]{Name: "encode", Replicable: true, Fn: func(it *item) { it.v += busy(1) }},
	).Instrument(c)
	items := make([]*item, 64)
	for i := range items {
		items[i] = &item{v: i}
	}
	pipe.Process(items)

	mw := parrt.NewMasterWorker("hash", parrt.NewParams(), 4, func(n int) int {
		return busy(n%7 + 1)
	}).Instrument(c)
	tasks := make([]int, 48)
	for i := range tasks {
		tasks[i] = i
	}
	mw.Process(tasks)

	pf := parrt.NewParallelFor("scale", parrt.NewParams(), 4).Instrument(c)
	pf.For(256, func(i int) { busy(1) })

	analyses := obs.Analyze(c.Snapshot())
	if len(analyses) != 3 {
		t.Fatalf("Analyze found %d patterns, want 3: %+v", len(analyses), analyses)
	}
	table := BottleneckTable(analyses)
	t.Logf("\n%s", table)
	for _, want := range []string{
		"runtime bottleneck table",
		"bottleneck", "util", "queue", "imbalance",
		"vid", "pipeline",
		"hash", "masterworker",
		"scale", "parallelfor",
		"decode", "filter", "encode",
		"chunks:",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// The expensive middle stage must be called out as the bottleneck.
	var pipeAnalysis *obs.PatternAnalysis
	for i := range analyses {
		if analyses[i].Kind == obs.KindPipeline {
			pipeAnalysis = &analyses[i]
		}
	}
	if pipeAnalysis.BottleneckStage != 1 {
		t.Errorf("bottleneck stage = %d (%s), want 1 (filter)",
			pipeAnalysis.BottleneckStage, pipeAnalysis.Bottleneck())
	}
	// A clean run must not print the fault section.
	if strings.Contains(table, "faults (") {
		t.Errorf("clean run rendered a fault section:\n%s", table)
	}
}

// TestBottleneckTableFaultLine: a run whose fault layer recorded
// activity must surface it in the table, naming the pattern.
func TestBottleneckTableFaultLine(t *testing.T) {
	c := obs.New()
	ps := parrt.NewParams()
	ps.Set("parallelfor.flaky.faultpolicy", 1) // SkipItem
	pf := parrt.NewParallelFor("flaky", ps, 2).Instrument(c)
	errs, err := pf.ForCtx(context.Background(), 64, func(i int) {
		if i == 13 || i == 31 {
			panic("injected")
		}
		busy(1)
	})
	if err != nil || len(errs) != 2 {
		t.Fatalf("ForCtx = %d errs, %v; want 2 skipped items and no error", len(errs), err)
	}
	table := BottleneckTable(obs.Analyze(c.Snapshot()))
	t.Logf("\n%s", table)
	for _, want := range []string{"faults (per pattern", "errors / retries / timeouts / drained", "flaky"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestBottleneckTableEmpty pins the uninstrumented fallback line.
func TestBottleneckTableEmpty(t *testing.T) {
	out := BottleneckTable(nil)
	if !strings.Contains(out, "no runtime metrics recorded") {
		t.Fatalf("empty table output: %q", out)
	}
}
