package report

import (
	"strings"
	"testing"

	"patty/internal/obs"
)

func TestCacheTable(t *testing.T) {
	h := obs.CacheHealth{
		Hits: 75, Misses: 25, Inserts: 25, Evictions: 3,
		Entries: 22, Bytes: 3 << 20, Segments: 4,
		TenantHits: []obs.CacheTenantHits{{Tenant: "alice", Hits: 50}, {Tenant: "bob", Hits: 25}},
	}
	out := CacheTable(h)
	for _, want := range []string{
		"evaluation cache",
		"75 hit / 25 miss (75% hit rate)",
		"22 entr(ies) in 4 segment(s), 3.0 MiB",
		"tenant hits: alice 50, bob 25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CacheTable missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DAMAGE") {
		t.Errorf("clean cache rendered damage line:\n%s", out)
	}

	h.Corrupt = 1
	if out := CacheTable(h); !strings.Contains(out, "DAMAGE: 1 segment(s) quarantined") ||
		!strings.Contains(out, "patty cache verify") {
		t.Errorf("damage line missing:\n%s", out)
	}
}
