package report

import (
	"strings"
	"testing"

	"patty/internal/obs"
)

// The fleet table must render the hostile-network ledger, the
// byzantine audit line, and a per-worker status column that singles
// out quarantined and benched peers.
func TestFleetTableHostileNetwork(t *testing.T) {
	h := obs.FleetHealth{
		Workers: 3, ShardsTotal: 10, ShardsDone: 10,
		EvalsMerged:     18,
		NetFaults:       map[string]int64{"drop": 3, "timeout": 2, "injected.corrupt": 5},
		ByzCrossChecked: 7, ByzDivergent: 2, ByzQuarantined: 1,
		ByzReverified: 4, ByzCorrected: 3,
		Peers: []obs.PeerHealth{
			{Name: "127.0.0.1-4713", Dispatched: 9, Failed: 1, Evals: 40,
				CrossChecked: 6, Divergent: 2, Quarantined: true},
			{Name: "127.0.0.1-9000", Dispatched: 4, Benched: true},
			{Name: "127.0.0.1-9100", Dispatched: 5, Evals: 30, CrossChecked: 4},
		},
	}
	out := FleetTable(h)
	for _, want := range []string{
		"net faults: drop 3, injected.corrupt 5, timeout 2",
		"byzantine audit: 7 cross-checked, 2 divergent, 1 quarantined, 4 re-verified, 3 corrected",
		"peers:",
		"QUARANTINED",
		"BENCHED",
		"1 worker(s) quarantined for divergent costs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FleetTable missing %q in:\n%s", want, out)
		}
	}
	// The healthy peer renders status "ok", and rows keep their order.
	var q, ben, okRow int
	for i, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "127.0.0.1-4713"):
			q = i
			if !strings.Contains(line, "QUARANTINED") {
				t.Errorf("liar row lacks QUARANTINED: %q", line)
			}
		case strings.Contains(line, "127.0.0.1-9000"):
			ben = i
			if !strings.Contains(line, "BENCHED") {
				t.Errorf("benched row lacks BENCHED: %q", line)
			}
		case strings.Contains(line, "127.0.0.1-9100"):
			okRow = i
			if !strings.HasSuffix(strings.TrimRight(line, " "), " ok") {
				t.Errorf("healthy row should end in ok: %q", line)
			}
		}
	}
	if !(q < ben && ben < okRow) {
		t.Errorf("peer rows out of order: %d %d %d\n%s", q, ben, okRow, out)
	}
}

// A quiet coordinator digest still renders the no-distress line and no
// hostile-network sections.
func TestFleetTableQuiet(t *testing.T) {
	out := FleetTable(obs.FleetHealth{Workers: 2, ShardsTotal: 4, ShardsDone: 4, EvalsMerged: 9})
	if !strings.Contains(out, "no distress") {
		t.Fatalf("missing no-distress line:\n%s", out)
	}
	for _, not := range []string{"net faults", "byzantine", "peers:"} {
		if strings.Contains(out, not) {
			t.Fatalf("unexpected %q section:\n%s", not, out)
		}
	}
}
