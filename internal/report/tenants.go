package report

import (
	"fmt"
	"strings"

	"patty/internal/obs"
)

// TenantTable renders the per-tenant digest (obs.AnalyzeTenants) as a
// fixed-width table: one row per tenant with its ledger, refusals
// split by cause (quota vs shed — the 429/503 distinction), queue
// occupancy and latency, plus a fairness summary line. It joins
// ServiceTable on the /statusz page of `patty serve`.
func TenantTable(ths []obs.TenantHealth) string {
	if len(ths) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("=== tenants (from internal/obs jobs.tenant.* keys) ===\n")
	fmt.Fprintf(&b, "%-16s %9s %8s %7s %8s %6s %6s %7s %10s\n",
		"tenant", "submitted", "done", "failed", "canceled", "429s", "shed", "queued", "p95 ms")
	for _, th := range ths {
		p95 := "-"
		if th.Latency.Count > 0 {
			p95 = fmt.Sprintf("%.1f", th.Latency.Quantile(0.95)/1e6)
		}
		fmt.Fprintf(&b, "%-16s %9d %8d %7d %8d %6d %6d %7d %10s\n",
			clip(th.Tenant, 16), th.Submitted, th.Done, th.Failed, th.Canceled,
			th.QuotaDenied, th.Shed, th.Queued, p95)
	}
	if ratio := obs.FairnessRatio(ths); ratio > 0 {
		fmt.Fprintf(&b, "fairness: max/min goodput = %.2f (1.00 is perfect; gate is <= 2.00)\n", ratio)
	}
	return b.String()
}

// clip truncates s to at most n runes with an ellipsis.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
