package report

import (
	"fmt"
	"strings"

	"patty/internal/obs"
)

// CacheTable renders the evaluation-cache digest (obs.AnalyzeCache) in
// the style of ServiceTable: the hit/miss ledger with the hit rate,
// the store footprint, per-tenant hit attribution, and — only when
// present — the damage line (quarantined segments) that tells an
// operator to run `patty cache verify`. It joins the /statusz pages of
// `patty serve` and `patty worker`.
func CacheTable(h obs.CacheHealth) string {
	var b strings.Builder
	b.WriteString("=== evaluation cache (from internal/obs cache.* keys) ===\n")
	fmt.Fprintf(&b, "lookups %d hit / %d miss (%.0f%% hit rate), %d inserted, %d evicted\n",
		h.Hits, h.Misses, 100*h.HitRate(), h.Inserts, h.Evictions)
	fmt.Fprintf(&b, "store   %d entr(ies) in %d segment(s), %s on disk\n",
		h.Entries, h.Segments, sizeOf(h.Bytes))
	if len(h.TenantHits) > 0 {
		parts := make([]string, 0, len(h.TenantHits))
		for _, th := range h.TenantHits {
			parts = append(parts, fmt.Sprintf("%s %d", clip(th.Tenant, 16), th.Hits))
		}
		fmt.Fprintf(&b, "tenant hits: %s\n", strings.Join(parts, ", "))
	}
	if h.Corrupt > 0 {
		fmt.Fprintf(&b, "DAMAGE: %d segment(s) quarantined during recovery — run `patty cache verify`\n",
			h.Corrupt)
	}
	return b.String()
}

// sizeOf renders a byte count with a binary unit.
func sizeOf(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
