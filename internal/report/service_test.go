package report

import (
	"strings"
	"testing"

	"patty/internal/obs"
)

func TestServiceTableCalm(t *testing.T) {
	h := obs.ServiceHealth{QueueCap: 16, Workers: 2, Submitted: 3, Done: 3}
	out := ServiceTable(h)
	for _, want := range []string{"queue", "workers 2", "submitted 3", "no distress"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestServiceTableDistress(t *testing.T) {
	h := obs.ServiceHealth{
		QueueCap: 4, QueueDepth: 4, Workers: 1,
		Submitted: 8, Shed: 2, Done: 5, Failed: 2, Canceled: 1,
		WorkerRestarts: 3, BreakerOpen: 1, BreakerTrips: 1,
	}
	out := ServiceTable(h)
	for _, want := range []string{"distress", "shed 2", "3 worker restart", "quarantined"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no distress") {
		t.Fatalf("degraded service rendered calm:\n%s", out)
	}
}
