package report

import (
	"fmt"
	"strings"

	"patty/internal/obs"
)

// FleetTable renders the fleet-layer digest (obs.AnalyzeFleet) in the
// style of ServiceTable: shard progress, the evaluation ledger, shard
// round-trip quantiles, and — only when present — the distress signals
// (lost workers, re-dispatched leases, local fallback evaluations). It
// backs the /statusz pages of the coordinator and of `patty worker`.
func FleetTable(h obs.FleetHealth) string {
	var b strings.Builder
	b.WriteString("=== tuning fleet (from internal/obs fleet.* keys) ===\n")
	if h.Coordinator() {
		fmt.Fprintf(&b, "workers %d (%d lost)   shards %d/%d merged (%.0f%%), %d stolen\n",
			h.Workers, h.WorkersLost, h.ShardsDone, h.ShardsTotal, 100*h.Progress(), h.ShardsStolen)
		fmt.Fprintf(&b, "evals   merged %d, duplicate %d (%.0f%% overhead), resumed %d, local fallback %d\n",
			h.EvalsMerged, h.EvalsDuplicate, 100*h.DuplicateRate(), h.EvalsResumed, h.EvalsLocal)
		if h.ShardRTT.Count > 0 {
			fmt.Fprintf(&b, "shard rtt p50 %.1f ms, p95 %.1f ms, max %.1f ms (%d attempts)\n",
				h.ShardRTT.Quantile(0.5)/1e6, h.ShardRTT.Quantile(0.95)/1e6,
				float64(h.ShardRTT.Max)/1e6, h.ShardRTT.Count)
		}
	}
	if h.WorkerShards > 0 || h.WorkerEvals > 0 || h.WorkerCacheHits > 0 {
		fmt.Fprintf(&b, "worker  %d shard(s) served, %d eval(s) measured, %d cache hit(s)\n",
			h.WorkerShards, h.WorkerEvals, h.WorkerCacheHits)
	}
	if h.Degraded() {
		b.WriteString("distress:\n")
		if h.WorkersLost > 0 {
			fmt.Fprintf(&b, "   %d worker(s) benched after repeated failures\n", h.WorkersLost)
		}
		if h.ShardsRedispatched > 0 {
			fmt.Fprintf(&b, "   %d lease(s) expired or failed and were re-dispatched\n", h.ShardsRedispatched)
		}
		if h.EvalsLocal > 0 {
			fmt.Fprintf(&b, "   %d replay miss(es) evaluated locally (table incomplete)\n", h.EvalsLocal)
		}
	} else if h.Coordinator() {
		b.WriteString("no distress: no workers lost, no leases re-dispatched, table complete\n")
	}
	return b.String()
}
