package report

import (
	"fmt"
	"sort"
	"strings"

	"patty/internal/obs"
)

// FleetTable renders the fleet-layer digest (obs.AnalyzeFleet) in the
// style of ServiceTable: shard progress, the evaluation ledger, shard
// round-trip quantiles, the hostile-network fault ledger, the
// byzantine audit, per-worker health rows (with an
// ok/BENCHED/QUARANTINED status column), and — only when present — the
// distress signals (lost workers, re-dispatched leases, local fallback
// evaluations, quarantined liars). It backs the /statusz pages of the
// coordinator and of `patty worker`.
func FleetTable(h obs.FleetHealth) string {
	var b strings.Builder
	b.WriteString("=== tuning fleet (from internal/obs fleet.* keys) ===\n")
	if h.Coordinator() {
		fmt.Fprintf(&b, "workers %d (%d lost)   shards %d/%d merged (%.0f%%), %d stolen\n",
			h.Workers, h.WorkersLost, h.ShardsDone, h.ShardsTotal, 100*h.Progress(), h.ShardsStolen)
		fmt.Fprintf(&b, "evals   merged %d, duplicate %d (%.0f%% overhead), resumed %d, local fallback %d\n",
			h.EvalsMerged, h.EvalsDuplicate, 100*h.DuplicateRate(), h.EvalsResumed, h.EvalsLocal)
		if h.ShardRTT.Count > 0 {
			fmt.Fprintf(&b, "shard rtt p50 %.1f ms, p95 %.1f ms, max %.1f ms (%d attempts)\n",
				h.ShardRTT.Quantile(0.5)/1e6, h.ShardRTT.Quantile(0.95)/1e6,
				float64(h.ShardRTT.Max)/1e6, h.ShardRTT.Count)
		}
	}
	if h.WorkerShards > 0 || h.WorkerEvals > 0 {
		fmt.Fprintf(&b, "worker  %d shard(s) served, %d eval(s) measured\n",
			h.WorkerShards, h.WorkerEvals)
	}
	if len(h.NetFaults) > 0 {
		classes := make([]string, 0, len(h.NetFaults))
		for c := range h.NetFaults {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, c := range classes {
			parts = append(parts, fmt.Sprintf("%s %d", c, h.NetFaults[c]))
		}
		fmt.Fprintf(&b, "net faults: %s\n", strings.Join(parts, ", "))
	}
	if h.ByzCrossChecked > 0 || h.ByzQuarantined > 0 {
		fmt.Fprintf(&b, "byzantine audit: %d cross-checked, %d divergent, %d quarantined, %d re-verified, %d corrected\n",
			h.ByzCrossChecked, h.ByzDivergent, h.ByzQuarantined, h.ByzReverified, h.ByzCorrected)
	}
	if len(h.Peers) > 0 {
		b.WriteString("peers:\n")
		for _, p := range h.Peers {
			status := "ok"
			switch {
			case p.Quarantined:
				status = "QUARANTINED"
			case p.Benched:
				status = "BENCHED"
			}
			fmt.Fprintf(&b, "   %-24s dispatched %-4d failed %-4d evals %-5d checked %-3d divergent %-3d %s\n",
				p.Name, p.Dispatched, p.Failed, p.Evals, p.CrossChecked, p.Divergent, status)
		}
	}
	if h.Degraded() {
		b.WriteString("distress:\n")
		if h.WorkersLost > 0 {
			fmt.Fprintf(&b, "   %d worker(s) benched after repeated failures\n", h.WorkersLost)
		}
		if h.ShardsRedispatched > 0 {
			fmt.Fprintf(&b, "   %d lease(s) expired or failed and were re-dispatched\n", h.ShardsRedispatched)
		}
		if h.EvalsLocal > 0 {
			fmt.Fprintf(&b, "   %d replay miss(es) evaluated locally (table incomplete)\n", h.EvalsLocal)
		}
		if h.ByzQuarantined > 0 {
			fmt.Fprintf(&b, "   %d worker(s) quarantined for divergent costs; contributions re-verified\n", h.ByzQuarantined)
		}
	} else if h.Coordinator() {
		b.WriteString("no distress: no workers lost, no leases re-dispatched, table complete\n")
	}
	return b.String()
}
