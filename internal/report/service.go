package report

import (
	"fmt"
	"strings"

	"patty/internal/obs"
)

// ServiceTable renders the jobs-layer digest (obs.AnalyzeService) the
// way BottleneckTable renders the pattern layer: one queue/worker
// summary line, the job ledger, end-to-end latency quantiles, and —
// only when present — the distress signals (shed load, worker
// restarts, quarantined configurations). It backs the /statusz page of
// `patty serve`.
func ServiceTable(h obs.ServiceHealth) string {
	var b strings.Builder
	b.WriteString("=== job service (from internal/obs jobs.* keys) ===\n")
	fmt.Fprintf(&b, "queue   %d/%d (%.0f%% full)   workers %d (%d running)\n",
		h.QueueDepth, h.QueueCap, 100*h.QueueFill(), h.Workers, h.Running)
	fmt.Fprintf(&b, "jobs    submitted %d, done %d, failed %d, canceled %d, pending %d\n",
		h.Submitted, h.Done, h.Failed, h.Canceled, h.Pending())
	if h.Latency.Count > 0 {
		fmt.Fprintf(&b, "latency p50 %.1f ms, p95 %.1f ms, max %.1f ms (submit->finish, %d jobs)\n",
			h.Latency.Quantile(0.5)/1e6, h.Latency.Quantile(0.95)/1e6,
			float64(h.Latency.Max)/1e6, h.Latency.Count)
	}
	if h.Degraded() {
		b.WriteString("distress:\n")
		if h.Shed > 0 {
			fmt.Fprintf(&b, "   shed %d submission(s) (%.0f%% of attempts) — queue overloaded\n",
				h.Shed, 100*h.ShedRate())
		}
		if h.WorkerRestarts > 0 {
			fmt.Fprintf(&b, "   %d worker restart(s) after job panics\n", h.WorkerRestarts)
		}
		if h.BreakerOpen > 0 || h.BreakerTrips > 0 {
			fmt.Fprintf(&b, "   breaker: %d config(s) quarantined now, %d trip(s), %d call(s) short-circuited\n",
				h.BreakerOpen, h.BreakerTrips, h.BreakerShortCircuits)
		}
	} else {
		b.WriteString("no distress: nothing shed, no worker crashes, breaker closed\n")
	}
	return b.String()
}
