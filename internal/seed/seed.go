// Package seed centralizes deterministic-seed plumbing. Every
// randomized subsystem — the differential fuzzer (internal/difftest),
// the evaluation study (internal/study via bench_test.go) and the
// corpus workload generators — derives its stream from one base seed,
// so a single `-seed` flag reproduces a failure byte-for-byte.
package seed

// Default is the repo-wide base seed (the study's historical seed).
const Default int64 = 4713

// Derive folds a base seed into a subsystem-local salt. At the
// default base it returns the salt unchanged, keeping every
// historical workload bit-identical; any other base perturbs all
// salted streams deterministically.
func Derive(base, salt int64) int64 {
	return salt ^ (base ^ Default)
}

// Mix scrambles a (base, index) pair into an independent per-item
// seed using the splitmix64 finalizer, so consecutive indices yield
// uncorrelated generator states.
func Mix(base int64, index int64) int64 {
	z := uint64(base) + uint64(index)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
