package seed

import "testing"

// TestDeriveIdentityAtDefault pins the backward-compatibility
// contract: with the default base, every derived stream seed equals
// its salt, so historical fixed-salt outputs (committed study tables,
// corpus workloads) are reproduced bit for bit.
func TestDeriveIdentityAtDefault(t *testing.T) {
	for _, salt := range []int64{0, 1, 7, 41, 4713, -3, 1 << 40} {
		if got := Derive(Default, salt); got != salt {
			t.Errorf("Derive(Default, %d) = %d, want identity", salt, got)
		}
	}
}

// TestDeriveSeparatesBases: distinct bases must yield distinct derived
// seeds for the same salt (the whole point of re-seeding a run).
func TestDeriveSeparatesBases(t *testing.T) {
	if Derive(1, 7) == Derive(2, 7) {
		t.Error("different bases collide on the same salt")
	}
	if Derive(1, 7) == Derive(1, 8) {
		t.Error("different salts collide under the same base")
	}
}

// TestMixAvalanche: Mix must be deterministic and spread consecutive
// indices far apart (it feeds generator seeds, where neighbouring
// values would correlate the programs).
func TestMixAvalanche(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		v := Mix(1, i)
		if v != Mix(1, i) {
			t.Fatal("Mix is not deterministic")
		}
		if seen[v] {
			t.Fatalf("Mix(1, %d) collides with an earlier index", i)
		}
		seen[v] = true
	}
	// Crude avalanche check: consecutive indices differ in many bits.
	for i := int64(0); i < 100; i++ {
		x := Mix(1, i) ^ Mix(1, i+1)
		bits := 0
		for x != 0 {
			bits += int(x & 1)
			x = int64(uint64(x) >> 1)
		}
		if bits < 10 {
			t.Fatalf("Mix(1, %d) and Mix(1, %d) differ in only %d bits", i, i+1, bits)
		}
	}
}
