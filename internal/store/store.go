package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"patty/internal/checkpoint"
	"patty/internal/jobs"
)

// snapshotKind is the internal/checkpoint kind tag of the compacted
// job snapshot.
const snapshotKind = "serve-jobs"

const (
	walName  = "jobs.wal"
	snapName = "jobs.snap"
)

// DefaultCompactEvery is how many appended records trigger a
// compaction (snapshot + WAL truncate).
const DefaultCompactEvery = 512

// JobState is everything the store knows about one job: the last
// journaled Info, the opaque submission spec a restarted server
// rebuilds the Runner from, the resume-checkpoint path, and (for
// finished jobs) the result payload.
type JobState struct {
	Info       jobs.Info       `json:"info"`
	Spec       json.RawMessage `json:"spec,omitempty"`
	Checkpoint string          `json:"checkpoint,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	// Started reports that some process dispatched the job at least
	// once before; recovery re-runs it regardless (it is acknowledged
	// and unfinalized), the flag is diagnostic.
	Started bool `json:"started,omitempty"`
}

// snapshot is the compacted on-disk image.
type snapshot struct {
	MaxSeq int64       `json:"max_seq"`
	Jobs   []*JobState `json:"jobs"`
}

// Recovery describes what Open found and repaired. A clean start is
// the zero value with Records == 0.
type Recovery struct {
	// Records is how many WAL records replayed on top of the snapshot.
	Records int
	// SnapshotCorrupt reports a damaged snapshot file; it was moved
	// aside to jobs.snap.corrupt and recovery continued from the WAL.
	SnapshotCorrupt bool
	// SnapshotErr is the typed snapshot error's text ("" when clean).
	SnapshotErr string
	// WALTruncated is how many damaged tail bytes were cut off.
	WALTruncated int
	// WALErr is the typed WAL error's text: a torn tail (expected
	// crash damage) or corruption ("" when clean).
	WALErr string
}

// Store is the durable job store. It implements jobs.Journal, so
// handing it to jobs.Options.Journal is the whole wiring.
type Store struct {
	dir          string
	compactEvery int

	mu           sync.Mutex
	wal          *os.File
	jobs         map[string]*JobState
	maxSeq       int64
	sinceCompact int
	recovery     Recovery
	closed       bool
}

// Open loads (creating if needed) the store in dir: snapshot first,
// then the WAL replayed on top, damaged tails truncated. It never
// refuses to start over repairable damage — a corrupt snapshot is
// quarantined aside and a corrupt WAL is cut at its last valid record,
// both reported in Recovery().
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:          dir,
		compactEvery: DefaultCompactEvery,
		jobs:         make(map[string]*JobState),
	}

	// Snapshot: the compacted prefix of history.
	var snap snapshot
	snapPath := filepath.Join(dir, snapName)
	switch err := checkpoint.Load(snapPath, snapshotKind, &snap); {
	case err == nil:
		for _, js := range snap.Jobs {
			s.jobs[js.Info.ID] = js
		}
		s.maxSeq = snap.MaxSeq
	case errors.Is(err, fs.ErrNotExist):
		// first boot
	default:
		// Damaged snapshot: quarantine it and rebuild from the WAL
		// rather than refuse to serve.
		s.recovery.SnapshotCorrupt = true
		s.recovery.SnapshotErr = err.Error()
		os.Rename(snapPath, snapPath+".corrupt")
	}

	// WAL: replay the tail of history, truncating any damage.
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	recs, validLen, derr := DecodeWAL(raw)
	if derr != nil {
		s.recovery.WALErr = derr.Error()
		s.recovery.WALTruncated = len(raw) - validLen
		if err := os.Truncate(walPath, int64(validLen)); err != nil {
			return nil, fmt.Errorf("store: truncate damaged WAL: %w", err)
		}
	}
	for _, rec := range recs {
		s.applyLocked(rec)
	}
	s.recovery.Records = len(recs)
	s.sinceCompact = len(recs)

	s.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// applyLocked folds one record into the in-memory state. Replay is
// idempotent: duplicate accepted records are ignored and the first
// finalize wins, which is what makes compaction crash-safe (a crash
// between snapshot write and WAL truncate replays records the snapshot
// already holds) and results exactly-once.
func (s *Store) applyLocked(rec Record) {
	switch rec.Op {
	case OpAccepted:
		if _, dup := s.jobs[rec.Job.ID]; dup {
			return
		}
		s.jobs[rec.Job.ID] = &JobState{Info: rec.Job, Spec: rec.Spec}
		if rec.Job.Seq > s.maxSeq {
			s.maxSeq = rec.Job.Seq
		}
	case OpCheckpoint:
		if js := s.jobs[rec.ID]; js != nil {
			js.Checkpoint = rec.Path
		}
	case OpStarted:
		if js := s.jobs[rec.ID]; js != nil && !js.Info.Status.Finished() {
			js.Started = true
			js.Info.Status = jobs.StatusRunning
			js.Info.Started = rec.At
		}
	case OpFinalized:
		js := s.jobs[rec.Job.ID]
		if js == nil {
			js = &JobState{}
			s.jobs[rec.Job.ID] = js
		} else if js.Info.Status.Finished() {
			return // first finalize wins
		}
		spec := js.Spec
		js.Info = rec.Job
		js.Spec = spec
		js.Result = rec.Result
		if rec.Job.Seq > s.maxSeq {
			s.maxSeq = rec.Job.Seq
		}
	}
}

// append journals one record durably (write + fsync) and then applies
// it, compacting when due.
func (s *Store) append(rec Record) error {
	rec.At = time.Now()
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.applyLocked(rec)
	s.sinceCompact++
	if s.sinceCompact >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

// compactLocked folds the WAL into a fresh snapshot (atomic rename via
// internal/checkpoint) and resets the log. A crash between the two
// steps only leaves records the snapshot already holds — replay is
// idempotent, so nothing is lost or doubled.
func (s *Store) compactLocked() error {
	snap := snapshot{MaxSeq: s.maxSeq, Jobs: s.sortedLocked()}
	if err := checkpoint.Save(filepath.Join(s.dir, snapName), snapshotKind, snap); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact truncate: %w", err)
	}
	s.sinceCompact = 0
	return nil
}

// Compact forces a compaction (tests, shutdown).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

// SetCompactEvery overrides the compaction period (tests).
func (s *Store) SetCompactEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > 0 {
		s.compactEvery = n
	}
}

// sortedLocked snapshots the job map in Seq order.
func (s *Store) sortedLocked() []*JobState {
	out := make([]*JobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		cp := *js
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Info.Seq != out[k].Info.Seq {
			return out[i].Info.Seq < out[k].Info.Seq
		}
		return out[i].Info.ID < out[k].Info.ID
	})
	return out
}

// Jobs returns every known job in accepted-seq order (copies).
func (s *Store) Jobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	states := s.sortedLocked()
	out := make([]JobState, len(states))
	for i, js := range states {
		out[i] = *js
	}
	return out
}

// Get returns one job's state.
func (s *Store) Get(id string) (JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return JobState{}, false
	}
	return *js, true
}

// MaxSeq is the highest admission sequence ever journaled — the floor
// for new ids after recovery.
func (s *Store) MaxSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// Recovery reports what Open found.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Close compacts once more and releases the WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.compactLocked()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- jobs.Journal implementation ---

// JobAccepted journals admission; called before the submitter gets an
// id, so its error refuses the submission.
func (s *Store) JobAccepted(info jobs.Info, spec []byte) error {
	return s.append(Record{Op: OpAccepted, Job: info, Spec: spec})
}

// JobCheckpoint journals the job's resume-journal path.
func (s *Store) JobCheckpoint(id, path string) error {
	return s.append(Record{Op: OpCheckpoint, ID: id, Path: path})
}

// JobStarted journals dispatch.
func (s *Store) JobStarted(id string) error {
	return s.append(Record{Op: OpStarted, ID: id})
}

// JobFinalized journals the terminal state and result. jobs.Service
// calls it before the result becomes observable — the exactly-once
// ordering.
func (s *Store) JobFinalized(info jobs.Info, result any) error {
	var raw json.RawMessage
	if result != nil {
		b, err := json.Marshal(result)
		if err != nil {
			// An unmarshalable result is still a terminal state: journal
			// the Info so the job never re-runs, drop the payload.
			b = nil
		}
		raw = b
	}
	return s.append(Record{Op: OpFinalized, Job: info, Result: raw})
}
