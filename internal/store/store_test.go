package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"patty/internal/jobs"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func info(id string, seq int64, status jobs.Status) jobs.Info {
	return jobs.Info{
		ID: id, Kind: "tune", Status: status, Tenant: "acme", Seq: seq,
		Submitted: time.Unix(1700000000+seq, 0).UTC(),
	}
}

// TestStoreRoundTrip: the full lifecycle survives a close/reopen.
// TestFreshOpenIsClean: a first boot on an empty directory must not
// report repairs — a missing snapshot is not a corrupt one (it is a
// wrapped fs.ErrNotExist, which os.IsNotExist would misclassify).
func TestFreshOpenIsClean(t *testing.T) {
	s := openT(t, t.TempDir())
	if rec := s.Recovery(); rec != (Recovery{}) {
		t.Fatalf("fresh open reported recovery: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(s.dir, snapName+".corrupt")); err == nil {
		t.Fatal("fresh open quarantined a snapshot that never existed")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.JobAccepted(info("j1", 1, jobs.StatusQueued), []byte(`{"algo":"tabu"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobCheckpoint("j1", "/ckpt/tune-tabu.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := s.JobStarted("j1"); err != nil {
		t.Fatal(err)
	}
	if err := s.JobAccepted(info("j2", 2, jobs.StatusQueued), []byte(`{"algo":"random"}`)); err != nil {
		t.Fatal(err)
	}
	done := info("j1", 1, jobs.StatusDone)
	if err := s.JobFinalized(done, map[string]int{"cost": 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	list := r.Jobs()
	if len(list) != 2 || list[0].Info.ID != "j1" || list[1].Info.ID != "j2" {
		t.Fatalf("recovered jobs: %+v", list)
	}
	j1, _ := r.Get("j1")
	if j1.Info.Status != jobs.StatusDone || j1.Checkpoint != "/ckpt/tune-tabu.ckpt" || !j1.Started {
		t.Fatalf("j1 state: %+v", j1)
	}
	var res map[string]int
	if err := json.Unmarshal(j1.Result, &res); err != nil || res["cost"] != 7 {
		t.Fatalf("j1 result: %s err=%v", j1.Result, err)
	}
	if string(j1.Spec) != `{"algo":"tabu"}` {
		t.Fatalf("j1 spec: %s", j1.Spec)
	}
	j2, _ := r.Get("j2")
	if j2.Info.Status != jobs.StatusQueued || j2.Started {
		t.Fatalf("j2 must still be queued: %+v", j2)
	}
	if r.MaxSeq() != 2 {
		t.Fatalf("MaxSeq = %d", r.MaxSeq())
	}
	if rec := r.Recovery(); rec.WALErr != "" || rec.SnapshotCorrupt {
		t.Fatalf("clean reopen reported damage: %+v", rec)
	}
}

// TestStoreCrashNoClose: a store abandoned without Close (the SIGKILL
// shape) recovers everything from the WAL alone.
func TestStoreCrashNoClose(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := int64(1); i <= 5; i++ {
		if err := s.JobAccepted(info(jobID(i), i, jobs.StatusQueued), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.JobFinalized(info("j3", 3, jobs.StatusDone), "best"); err != nil {
		t.Fatal(err)
	}
	// no Close: the WAL file is simply left behind

	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 5 {
		t.Fatalf("recovered %d jobs, want 5", got)
	}
	j3, _ := r.Get("j3")
	if j3.Info.Status != jobs.StatusDone {
		t.Fatalf("j3: %+v", j3.Info)
	}
	if rec := r.Recovery(); rec.Records != 6 {
		t.Fatalf("replayed %d records, want 6 (%+v)", rec.Records, rec)
	}
}

func jobID(i int64) string { return "j" + string(rune('0'+i)) }

// TestFirstFinalizeWins: duplicate finalize records (compaction crash
// replay, or a re-run racing recovery) keep the first terminal state.
func TestFirstFinalizeWins(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	if err := s.JobAccepted(info("j1", 1, jobs.StatusQueued), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.JobFinalized(info("j1", 1, jobs.StatusDone), "first"); err != nil {
		t.Fatal(err)
	}
	if err := s.JobFinalized(info("j1", 1, jobs.StatusFailed), "second"); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Get("j1")
	if j.Info.Status != jobs.StatusDone || string(j.Result) != `"first"` {
		t.Fatalf("second finalize must lose: %+v result=%s", j.Info, j.Result)
	}
}

// TestCompactionPreservesState: crossing the compaction threshold
// folds the WAL into the snapshot with nothing lost, and the WAL
// actually shrinks.
func TestCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.SetCompactEvery(4)
	for i := int64(1); i <= 9; i++ {
		if err := s.JobAccepted(info(jobID(i), i, jobs.StatusQueued), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// 9 appends at compact-every-4: two compactions happened, at most
	// one record sits in the live WAL.
	raw, _ := os.ReadFile(filepath.Join(dir, walName))
	recs, _, derr := DecodeWAL(raw)
	if derr != nil || len(recs) > 1 {
		t.Fatalf("live WAL holds %d records (err %v), size %d", len(recs), derr, st.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 9 {
		t.Fatalf("recovered %d jobs after compaction, want 9", got)
	}
	if r.MaxSeq() != 9 {
		t.Fatalf("MaxSeq = %d", r.MaxSeq())
	}
}

// TestCompactionCrashReplaysIdempotently simulates the crash window
// between snapshot write and WAL truncate: records the snapshot
// already holds replay on top of it without doubling anything.
func TestCompactionCrashReplaysIdempotently(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.JobAccepted(info("j1", 1, jobs.StatusQueued), []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobFinalized(info("j1", 1, jobs.StatusDone), 42); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot but "crash" before truncating the WAL.
	walBefore, _ := os.ReadFile(filepath.Join(dir, walName))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, walName), walBefore, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 1 {
		t.Fatalf("idempotent replay produced %d jobs, want 1", got)
	}
	j, _ := r.Get("j1")
	if j.Info.Status != jobs.StatusDone || string(j.Spec) != `{"a":1}` {
		t.Fatalf("replayed job: %+v spec=%s", j.Info, j.Spec)
	}
}

// TestCorruptSnapshotQuarantined: a damaged snapshot must not brick
// the store — it is moved aside and recovery continues from the WAL.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.JobAccepted(info("j1", 1, jobs.StatusQueued), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Journal one more record so the WAL still holds something.
	if err := s.JobStarted("j1"); err != nil {
		t.Fatal(err)
	}
	s.Close() // final compact folds everything into the snapshot
	snapPath := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	rec := r.Recovery()
	if !rec.SnapshotCorrupt || rec.SnapshotErr == "" {
		t.Fatalf("recovery must flag the snapshot: %+v", rec)
	}
	if _, err := os.Stat(snapPath + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
}

// TestWALTornTailTruncated: a partial final record (crash mid-append)
// is cut off, everything before it survives, and the store keeps
// accepting appends afterwards.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := int64(1); i <= 3; i++ {
		if err := s.JobAccepted(info(jobID(i), i, jobs.StatusQueued), nil); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	s.wal.Close()
	s.closed = true
	s.mu.Unlock()
	walPath := filepath.Join(dir, walName)
	raw, _ := os.ReadFile(walPath)
	if err := os.WriteFile(walPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 2 {
		t.Fatalf("recovered %d jobs after torn tail, want 2", got)
	}
	rec := r.Recovery()
	if rec.WALErr == "" || rec.WALTruncated == 0 {
		t.Fatalf("recovery must report the torn tail: %+v", rec)
	}
	// The log is writable again after the repair.
	if err := r.JobAccepted(info("j9", 9, jobs.StatusQueued), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("j9"); !ok {
		t.Fatal("post-repair append lost")
	}
}

// TestWALCorruptionEveryOffset is the ISSUE's fuzz gate: flip one byte
// at every offset of a multi-record WAL image, and separately truncate
// at every length. Decoding must never panic, must classify the damage
// with a typed error, and must recover exactly the records that are
// fully intact before the damaged byte.
func TestWALCorruptionEveryOffset(t *testing.T) {
	var img []byte
	var ends []int // byte offset just past record i
	n := 4
	for i := int64(1); int(i) <= n; i++ {
		st := jobs.StatusQueued
		if i%2 == 0 {
			st = jobs.StatusDone
		}
		frame, err := EncodeRecord(Record{Op: OpAccepted, Job: info(jobID(i), i, st), Spec: []byte(`{"x":"y z"}`)})
		if err != nil {
			t.Fatal(err)
		}
		img = append(img, frame...)
		ends = append(ends, len(img))
	}
	// intactBefore(off) = how many records end at or before offset off.
	intactBefore := func(off int) int {
		k := 0
		for _, e := range ends {
			if e <= off {
				k++
			}
		}
		return k
	}
	if recs, vl, err := DecodeWAL(img); err != nil || len(recs) != n || vl != len(img) {
		t.Fatalf("clean image: %d recs, validLen %d, err %v", len(recs), vl, err)
	}

	t.Run("flip", func(t *testing.T) {
		for off := 0; off < len(img); off++ {
			mut := bytes.Clone(img)
			mut[off] ^= 0xff
			recs, validLen, err := DecodeWAL(mut)
			if err == nil {
				t.Fatalf("flip at %d: damage not detected", off)
			}
			if !errors.Is(err, ErrCorruptWAL) && !errors.Is(err, ErrTornTail) {
				t.Fatalf("flip at %d: untyped error %v", off, err)
			}
			want := intactBefore(off)
			if len(recs) != want {
				t.Fatalf("flip at %d: recovered %d records, want %d (err %v)", off, len(recs), want, err)
			}
			if validLen > off {
				t.Fatalf("flip at %d: validLen %d reaches past the damage", off, validLen)
			}
			for i, r := range recs {
				if r.Job.ID != jobID(int64(i+1)) {
					t.Fatalf("flip at %d: recovered record %d is %q", off, i, r.Job.ID)
				}
			}
		}
	})

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut <= len(img); cut++ {
			recs, validLen, err := DecodeWAL(img[:cut])
			want := intactBefore(cut)
			if len(recs) != want {
				t.Fatalf("cut at %d: recovered %d records, want %d (err %v)", cut, len(recs), want, err)
			}
			if validLen != ends0(ends, want) {
				t.Fatalf("cut at %d: validLen %d, want %d", cut, validLen, ends0(ends, want))
			}
			atBoundary := cut == 0 || (want > 0 && ends[want-1] == cut)
			if atBoundary {
				if err != nil {
					t.Fatalf("cut at record boundary %d: unexpected error %v", cut, err)
				}
			} else if !errors.Is(err, ErrTornTail) {
				t.Fatalf("cut at %d: %v, want ErrTornTail", cut, err)
			}
		}
	})
}

// ends0 returns the end offset of the k-th record (0 for k == 0).
func ends0(ends []int, k int) int {
	if k == 0 {
		return 0
	}
	return ends[k-1]
}

// TestServiceWithStoreEndToEnd wires a real jobs.Service to the store
// and proves the acknowledged-work invariants across a simulated
// restart: finished jobs restore terminal with their results, queued
// jobs are still there to resubmit, and nothing runs twice.
func TestServiceWithStoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir)
	svc := jobs.New(jobs.Options{Workers: 1, QueueDepth: 16, Journal: st})
	id, err := svc.SubmitJob(jobs.Submission{
		Tenant: "acme", Kind: "tune", Spec: []byte(`{"algo":"linear"}`),
		Run: func(ctx context.Context) (any, error) { return map[string]string{"best": "cores=4"}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.Wait(waitCtx, id); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	st.Close()

	// "Restart": a fresh store + service recover the finished job.
	st2 := openT(t, dir)
	defer st2.Close()
	svc2 := jobs.New(jobs.Options{Workers: 1, QueueDepth: 16, Journal: st2})
	defer svc2.Close()
	svc2.SetNextSeq(st2.MaxSeq())
	for _, js := range st2.Jobs() {
		if js.Info.Status.Finished() {
			svc2.Restore(js.Info, js.Result)
		}
	}
	res, infoGot, err := svc2.Result(id)
	if err != nil || infoGot.Status != jobs.StatusDone {
		t.Fatalf("restored result: %v %+v %v", res, infoGot, err)
	}
	raw, ok := res.(json.RawMessage)
	if !ok {
		t.Fatalf("restored result type %T", res)
	}
	var m map[string]string
	if err := json.Unmarshal(raw, &m); err != nil || m["best"] != "cores=4" {
		t.Fatalf("restored payload: %s err=%v", raw, err)
	}
	// A new submission on the recovered service takes a higher seq.
	id2, err := svc2.Submit("w", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := svc2.Status(id2)
	s1, _ := svc2.Status(id)
	if s2.Seq <= s1.Seq {
		t.Fatalf("recovered seq floor violated: new %d vs old %d", s2.Seq, s1.Seq)
	}
}

// DecodeWAL edge cases: inputs at the boundaries of the framing
// grammar — an empty image, a tail that is only a frame header, and a
// frame whose declared payload length exceeds the bytes that remain —
// must come back as the precise typed verdicts, never a panic or a
// phantom record.
func TestDecodeWALEdgeCases(t *testing.T) {
	good, err := EncodeRecord(Record{Op: OpAccepted, ID: "j1"})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty image", func(t *testing.T) {
		recs, n, err := DecodeWAL(nil)
		if err != nil || n != 0 || len(recs) != 0 {
			t.Fatalf("DecodeWAL(nil) = %v, %d, %v; want clean empty", recs, n, err)
		}
		recs, n, err = DecodeWAL([]byte{})
		if err != nil || n != 0 || len(recs) != 0 {
			t.Fatalf("DecodeWAL(empty) = %v, %d, %v; want clean empty", recs, n, err)
		}
	})

	t.Run("header-only tail", func(t *testing.T) {
		// One good record, then a frame cut right after its header line:
		// the header parses but zero payload bytes follow.
		nl := bytes.IndexByte(good, '\n')
		img := append(append([]byte{}, good...), good[:nl+1]...)
		recs, n, err := DecodeWAL(img)
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("err = %v, want ErrTornTail", err)
		}
		if len(recs) != 1 || n != len(good) {
			t.Fatalf("prefix = %d record(s), validLen %d; want 1, %d", len(recs), n, len(good))
		}
		// The same tail with nothing before it: zero records, offset 0.
		recs, n, err = DecodeWAL(good[:nl+1])
		if !errors.Is(err, ErrTornTail) || len(recs) != 0 || n != 0 {
			t.Fatalf("bare header = %v, %d, %v; want torn tail at 0", recs, n, err)
		}
		// A header cut before its newline is also a torn tail, not
		// corruption.
		recs, n, err = DecodeWAL(good[:nl])
		if !errors.Is(err, ErrTornTail) || len(recs) != 0 || n != 0 {
			t.Fatalf("unterminated header = %v, %d, %v; want torn tail at 0", recs, n, err)
		}
	})

	t.Run("declared length exceeds remaining bytes", func(t *testing.T) {
		// Chop the final payload byte + newline: the header's length field
		// now promises more than the image holds.
		img := append(append([]byte{}, good...), good[:len(good)-2]...)
		recs, n, err := DecodeWAL(img)
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("err = %v, want ErrTornTail", err)
		}
		if len(recs) != 1 || n != len(good) {
			t.Fatalf("prefix = %d record(s), validLen %d; want 1, %d", len(recs), n, len(good))
		}
		// An absurd declared length with all framing intact is still a
		// torn tail by the grammar (bytes merely missing), and must not
		// allocate or scan past the image.
		huge := append([]byte("walrec 00000000 9999999999\n"), []byte("x")...)
		recs, n, err = DecodeWAL(huge)
		if !errors.Is(err, ErrTornTail) || len(recs) != 0 || n != 0 {
			t.Fatalf("huge length = %v, %d, %v; want torn tail at 0", recs, n, err)
		}
	})
}
