// Package store is the durable job store behind `patty serve
// -store-dir`: a write-ahead log of job lifecycle records (accepted,
// checkpoint-ref, started, finalized) periodically compacted into a
// snapshot written with internal/checkpoint's atomic-rename machinery.
// Every record is CRC-framed, so a SIGKILL at any byte leaves a log
// whose maximal valid prefix is recoverable: a torn tail is silently
// truncated, anything else surfaces as a typed error — never a panic,
// never a partial record applied.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"time"

	"patty/internal/jobs"
)

var (
	// ErrCorruptWAL marks a log record whose bytes are all present but
	// damaged (bad magic, bad header, checksum mismatch, malformed
	// payload). Everything before it is trustworthy; it and everything
	// after are not.
	ErrCorruptWAL = errors.New("store: corrupt WAL record")
	// ErrTornTail marks a log that ends mid-record — the shape a crash
	// during append leaves. Recovery truncates the tail and continues;
	// it is expected damage, not corruption.
	ErrTornTail = errors.New("store: torn WAL tail")
)

// Record operations, one per job lifecycle edge.
const (
	// OpAccepted: the job was admitted; Job and Spec are set. Written
	// before the submitter gets an id, so every acknowledgment is here.
	OpAccepted = "accepted"
	// OpCheckpoint: ID's resume journal lives at Path.
	OpCheckpoint = "ckpt"
	// OpStarted: ID was dispatched to a worker (diagnostic).
	OpStarted = "started"
	// OpFinalized: the job reached a terminal state; Job carries the
	// final Info and Result the result payload. First one wins.
	OpFinalized = "finalized"
)

// Record is one WAL entry.
type Record struct {
	Op     string          `json:"op"`
	ID     string          `json:"id,omitempty"`
	Path   string          `json:"path,omitempty"`
	Job    jobs.Info       `json:"job,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// At is the append wall-clock time (diagnostic only; recovery
	// trusts the Info timestamps).
	At time.Time `json:"at,omitempty"`
}

// walMagic opens every frame. The trailing space doubles as the field
// separator of the header line.
const walMagic = "walrec "

// maxHeader bounds the header-line scan: "walrec " + 8 hex + " " + a
// length field no wider than 20 digits + "\n".
const maxHeader = len(walMagic) + 8 + 1 + 20 + 1

// castagnoli is CRC-32C, matching internal/checkpoint.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord renders one frame:
//
//	walrec <crc32c-hex8> <payload-len>\n
//	<payload bytes>\n
//
// The CRC covers the payload only; the framing fields are validated
// structurally (hex width, decimal length, exact trailing newline), so
// every byte of the frame participates in some check.
func EncodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: marshal record: %w", err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s%08x %d\n", walMagic, crc32.Checksum(payload, castagnoli), len(payload))
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes(), nil
}

// DecodeWAL parses a log image into its maximal valid record prefix.
// validLen is the byte offset just past the last good record — the
// truncation point recovery uses. err is nil for a clean log,
// ErrTornTail when the data simply ends mid-record (crash during
// append), and ErrCorruptWAL when bytes that are fully present fail
// validation. In every case the returned records are exactly the valid
// prefix; damage never panics and never yields a partial record.
func DecodeWAL(raw []byte) (recs []Record, validLen int, err error) {
	off := 0
	for off < len(raw) {
		rest := raw[off:]
		// Frame magic. A proper prefix of the magic at end-of-data is a
		// torn tail; a mismatch within available bytes is corruption.
		if len(rest) < len(walMagic) {
			if bytes.HasPrefix([]byte(walMagic), rest) {
				return recs, off, fmt.Errorf("%w: %d byte(s) after offset %d", ErrTornTail, len(rest), off)
			}
			return recs, off, fmt.Errorf("%w: bad magic at offset %d", ErrCorruptWAL, off)
		}
		if !bytes.HasPrefix(rest, []byte(walMagic)) {
			return recs, off, fmt.Errorf("%w: bad magic at offset %d", ErrCorruptWAL, off)
		}
		// Header line.
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			if len(rest) <= maxHeader {
				return recs, off, fmt.Errorf("%w: unterminated header at offset %d", ErrTornTail, off)
			}
			return recs, off, fmt.Errorf("%w: runaway header at offset %d", ErrCorruptWAL, off)
		}
		if nl > maxHeader {
			return recs, off, fmt.Errorf("%w: oversized header at offset %d", ErrCorruptWAL, off)
		}
		fields := strings.Fields(string(rest[len(walMagic):nl]))
		if len(fields) != 2 || len(fields[0]) != 8 {
			return recs, off, fmt.Errorf("%w: malformed header at offset %d", ErrCorruptWAL, off)
		}
		wantSum, herr := strconv.ParseUint(fields[0], 16, 32)
		if herr != nil {
			return recs, off, fmt.Errorf("%w: bad checksum field at offset %d", ErrCorruptWAL, off)
		}
		wantLen, herr := strconv.Atoi(fields[1])
		if herr != nil || wantLen < 0 {
			return recs, off, fmt.Errorf("%w: bad length field at offset %d", ErrCorruptWAL, off)
		}
		// Payload + trailing newline.
		body := rest[nl+1:]
		if len(body) < wantLen+1 {
			return recs, off, fmt.Errorf("%w: record at offset %d wants %d byte(s), has %d",
				ErrTornTail, off, wantLen+1, len(body))
		}
		payload := body[:wantLen]
		if body[wantLen] != '\n' {
			return recs, off, fmt.Errorf("%w: unterminated record at offset %d", ErrCorruptWAL, off)
		}
		if got := crc32.Checksum(payload, castagnoli); got != uint32(wantSum) {
			return recs, off, fmt.Errorf("%w: checksum %08x, want %08x at offset %d",
				ErrCorruptWAL, got, wantSum, off)
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return recs, off, fmt.Errorf("%w: payload at offset %d: %v", ErrCorruptWAL, off, jerr)
		}
		recs = append(recs, rec)
		off += nl + 1 + wantLen + 1
	}
	return recs, off, nil
}
