// Package baseline implements the comparison detectors used in the
// evaluation (paper §4 and §6):
//
//   - HotspotProfiler mimics the VTune-style "first step" of Intel
//     Parallel Studio and of Visual Studio's built-in profiler: it
//     flags the loops carrying the most runtime, with no dependence
//     analysis at all. The user study found this reveals exactly the
//     hot location and misses everything else.
//   - StaticConservative mimics an auto-parallelizing compiler
//     (paper §6: "compilers formally prove the correctness of the
//     parallel result", so "the parallel potential is limited"): a
//     loop is flagged only when every iteration is *provably*
//     independent from static information alone — affine subscripts,
//     no unknown calls, no unanalyzable accesses.
//   - Patty wraps the pattern detector (package pattern) under the
//     same interface for precision/recall comparisons (experiment E6).
package baseline

import (
	"go/ast"
	"sort"

	"patty/internal/callgraph"
	"patty/internal/model"
	"patty/internal/pattern"
)

// Location identifies a flagged loop.
type Location struct {
	Fn     string
	LoopID int
}

// Detector is a detection strategy under evaluation.
type Detector interface {
	// Name identifies the strategy in reports.
	Name() string
	// Detect returns the loops flagged as parallelizable.
	Detect(m *model.Model) []Location
}

// HotspotProfiler flags the TopK loops with the highest share of total
// runtime (inclusive), mimicking a profiler's hot-region view. The
// user study found that the built-in profiler "reveals one code
// location with parallel potential" — that is TopK = 1, the default.
// It needs a profiled model; without one it flags nothing — a profiler
// cannot run without executing the program.
type HotspotProfiler struct {
	// TopK is how many regions the engineer inspects (default 1).
	TopK int
	// Threshold is the minimum share of total runtime (default 0.25).
	Threshold float64
}

// Name implements Detector.
func (HotspotProfiler) Name() string { return "hotspot-profiler" }

// Detect implements Detector.
func (h HotspotProfiler) Detect(m *model.Model) []Location {
	th := h.Threshold
	if th == 0 {
		th = 0.25
	}
	k := h.TopK
	if k == 0 {
		k = 1
	}
	var loops []*model.LoopModel
	for _, lm := range m.AllLoops() {
		if !lm.Nested && lm.HotShare >= th {
			loops = append(loops, lm)
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].HotShare != loops[j].HotShare {
			return loops[i].HotShare > loops[j].HotShare
		}
		if loops[i].Fn.Name != loops[j].Fn.Name {
			return loops[i].Fn.Name < loops[j].Fn.Name
		}
		return loops[i].LoopID < loops[j].LoopID
	})
	if len(loops) > k {
		loops = loops[:k]
	}
	var out []Location
	for _, lm := range loops {
		out = append(out, Location{Fn: lm.Fn.Name, LoopID: lm.LoopID})
	}
	return out
}

// StaticConservative flags loops whose independence is provable
// statically: no loop-carried dependences under the *pessimistic*
// reading (unanalyzable accesses count as dependences — which the
// deps package already does), no stream-breaking control flow, and no
// calls to functions that are unknown or have side effects.
type StaticConservative struct{}

// Name implements Detector.
func (StaticConservative) Name() string { return "static-conservative" }

// Detect implements Detector.
func (StaticConservative) Detect(m *model.Model) []Location {
	var out []Location
	for _, lm := range m.AllLoops() {
		if lm.Nested {
			continue
		}
		if len(lm.Static.Control) > 0 || len(lm.Static.Body) == 0 {
			continue
		}
		if len(lm.Static.CarriedDeps()) > 0 {
			continue
		}
		if !callsProvablyPure(m.CG, lm) {
			continue
		}
		out = append(out, Location{Fn: lm.Fn.Name, LoopID: lm.LoopID})
	}
	return out
}

// callsProvablyPure demands that every call in the loop body resolves
// to an intra-program function whose transitive summary is pure.
// (Writes into the loop's own data handled via the oracle already
// surface as dependences; this check covers what a formal prover could
// not see at all: unknown callees.)
func callsProvablyPure(cg *callgraph.Graph, lm *model.LoopModel) bool {
	pure := true
	body := loopBody(lm.Loop)
	if body == nil {
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !pure {
			return pure
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			switch fun.Name {
			case "len", "cap", "min", "max", "int", "float64", "string", "byte", "rune", "append", "make":
				return true // builtins and conversions
			}
			if s, ok := cg.Summaries[fun.Name]; ok {
				if !s.Pure() {
					pure = false
				}
				return true
			}
			pure = false // unknown callee: cannot prove anything
		case *ast.SelectorExpr:
			// Method call: all candidates must be pure; none → unknown.
			name := fun.Sel.Name
			found := false
			for fname, s := range cg.Summaries {
				if matchesMethod(fname, name) {
					found = true
					if !s.Pure() {
						pure = false
					}
				}
			}
			if !found {
				pure = false
			}
		default:
			pure = false
		}
		return pure
	})
	return pure
}

func matchesMethod(fnName, method string) bool {
	for i := 0; i < len(fnName); i++ {
		if fnName[i] == '.' {
			return fnName[i+1:] == method
		}
	}
	return false
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch l := s.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// Patty adapts the pattern detector to the Detector interface.
type Patty struct {
	// Options forwards detection options (zero value: defaults with
	// SkipNested).
	Options pattern.Options
}

// Name implements Detector.
func (Patty) Name() string { return "patty" }

// Detect implements Detector.
func (p Patty) Detect(m *model.Model) []Location {
	opt := p.Options
	opt.SkipNested = true
	rep := pattern.Detect(m, opt)
	var out []Location
	for _, c := range rep.Candidates {
		out = append(out, Location{Fn: c.Fn, LoopID: c.LoopID})
	}
	return out
}
