package baseline

import (
	"testing"

	"patty/internal/interp"
	"patty/internal/model"
	"patty/internal/source"
)

const src = `package p

func pureSq(x int) int { return x * x }

func Clean(a, b []int) {
	for i := 0; i < len(a); i++ {
		b[i] = pureSq(a[i])
	}
}

var hits int

func impure(x int) int {
	hits++
	return x
}

func Tainted(a, b []int) {
	for i := 0; i < len(a); i++ {
		b[i] = impure(a[i])
	}
}

func Hidden(a, b []int) {
	for i := 0; i < len(a); i++ {
		b[idx(i)] = a[i]
	}
}

func idx(i int) int { return i }

func Main(a, b []int) int {
	Clean(a, b)
	Hidden(a, b)
	s := 0
	for k := 0; k < 40000; k++ {
		s = (s + k) % 1000
	}
	return s + hits
}
`

func buildModel(t *testing.T, dynamic bool) *model.Model {
	t.Helper()
	prog, err := source.ParseFile("t.go", src)
	if err != nil {
		t.Fatal(err)
	}
	m := model.Build(prog)
	if dynamic {
		err := m.EnrichDynamic(model.Workload{
			Entry: "Main",
			Args: func(im *interp.Machine) []interp.Value {
				mk := func() *interp.Slice {
					vals := make([]interp.Value, 8)
					for i := range vals {
						vals[i] = int64(i)
					}
					return im.NewSlice(vals...)
				}
				return []interp.Value{mk(), mk()}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func has(locs []Location, fn string) bool {
	for _, l := range locs {
		if l.Fn == fn {
			return true
		}
	}
	return false
}

func TestStaticConservativeProvesOnlyClean(t *testing.T) {
	m := buildModel(t, false)
	locs := StaticConservative{}.Detect(m)
	if !has(locs, "Clean") {
		t.Errorf("provably clean loop missed: %+v", locs)
	}
	if has(locs, "Tainted") {
		t.Errorf("loop calling an impure function must not be provable: %+v", locs)
	}
	if has(locs, "Hidden") {
		t.Errorf("unanalyzable subscript must not be provable: %+v", locs)
	}
}

func TestHotspotNeedsProfile(t *testing.T) {
	if got := (HotspotProfiler{}).Detect(buildModel(t, false)); len(got) != 0 {
		t.Fatalf("profiler without execution flagged %+v", got)
	}
}

func TestHotspotFlagsHottestLoop(t *testing.T) {
	m := buildModel(t, true)
	locs := HotspotProfiler{}.Detect(m)
	if len(locs) != 1 || locs[0].Fn != "Main" {
		t.Fatalf("top-1 should be Main's spin loop: %+v", locs)
	}
	// With a larger budget the profiler surfaces more regions.
	more := HotspotProfiler{TopK: 5, Threshold: 0.0001}.Detect(m)
	if len(more) <= len(locs) {
		t.Fatalf("TopK=5 should flag more: %+v", more)
	}
}

func TestPattyDetectorOptimism(t *testing.T) {
	m := buildModel(t, true)
	locs := Patty{}.Detect(m)
	if !has(locs, "Clean") {
		t.Errorf("Clean missed: %+v", locs)
	}
	if !has(locs, "Hidden") {
		t.Errorf("optimistic detector should clear Hidden's subscript dynamically: %+v", locs)
	}
	// Tainted writes a global through its callee on every iteration —
	// a genuine carried dependence that optimism must NOT clear.
	if has(locs, "Tainted") {
		t.Errorf("global-counter loop wrongly flagged: %+v", locs)
	}
}

func TestNames(t *testing.T) {
	if (Patty{}).Name() != "patty" ||
		(HotspotProfiler{}).Name() != "hotspot-profiler" ||
		(StaticConservative{}).Name() != "static-conservative" {
		t.Fatal("detector names")
	}
}
