package checkpoint

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type snap struct {
	Name  string         `json:"name"`
	Count int            `json:"count"`
	Costs map[string]int `json:"costs"`
}

func sample() snap {
	return snap{
		Name:  "tune",
		Count: 42,
		Costs: map[string]int{"repl.oil=4;": 1700, "sequential=1;": 9000},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ckpt")
	in := sample()
	if err := Save(path, "test-snap", in); err != nil {
		t.Fatal(err)
	}
	var out snap
	if err := Load(path, "test-snap", &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	var out snap
	err := Load(filepath.Join(t.TempDir(), "nope.ckpt"), "test-snap", &out)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: got %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatal("a missing file must not read as corruption")
	}
}

func TestKindMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ckpt")
	if err := Save(path, "fuzz-sweep", sample()); err != nil {
		t.Fatal(err)
	}
	var out snap
	err := Load(path, "tuner-state", &out)
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("kind mismatch: got %v, want ErrKindMismatch", err)
	}
	if errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatal("a kind mismatch is not corruption")
	}
}

// TestSaveIsAtomicOverwrite: overwriting a snapshot must leave the old
// one intact if encoding fails, and replace it whole otherwise.
func TestSaveIsAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ckpt")
	if err := Save(path, "test-snap", sample()); err != nil {
		t.Fatal(err)
	}
	// Unmarshalable payload: Save must fail before touching the file.
	if err := Save(path, "test-snap", func() {}); err == nil {
		t.Fatal("saving an unmarshalable value must fail")
	}
	var out snap
	if err := Load(path, "test-snap", &out); err != nil {
		t.Fatalf("old snapshot damaged by failed save: %v", err)
	}
	next := sample()
	next.Count = 99
	if err := Save(path, "test-snap", next); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "test-snap", &out); err != nil || out.Count != 99 {
		t.Fatalf("overwrite: %+v, %v", out, err)
	}
	if entries, _ := os.ReadDir(filepath.Dir(path)); len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

// TestCheckpointCorruptionEveryOffset is the satellite fuzz test: a
// snapshot truncated at every possible length and bit-flipped at every
// byte offset must always load as a typed error — never panic, never
// silently yield partial state. Flips may hit header or payload alike.
func TestCheckpointCorruptionEveryOffset(t *testing.T) {
	raw, err := Encode("test-snap", sample())
	if err != nil {
		t.Fatal(err)
	}
	want := sample()

	check := func(label string, mut []byte) {
		t.Helper()
		var out snap
		err := Decode(mut, "test-snap", &out)
		if err == nil {
			// The only acceptable "success" would be a byte-identical
			// file, which no truncation or flip produces.
			t.Fatalf("%s: corrupted snapshot loaded silently: %+v", label, out)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) && !errors.Is(err, ErrKindMismatch) {
			t.Fatalf("%s: untyped error %v", label, err)
		}
		// No partial load: out must not have absorbed recognizable
		// state before the error surfaced.
		if out.Count == want.Count && out.Name == want.Name && len(out.Costs) == len(want.Costs) {
			t.Fatalf("%s: error reported but state partially loaded: %+v", label, out)
		}
	}

	for n := 0; n < len(raw); n++ {
		check("truncate", raw[:n:n])
	}
	for i := 0; i < len(raw); i++ {
		for _, mask := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= mask
			check("flip", mut)
		}
	}
	// Trailing garbage must not pass either.
	check("append", append(append([]byte(nil), raw...), 'x'))
}
