// Package checkpoint persists crash-safe snapshots of long-running
// work — tuner search state, fuzzing-sweep progress, measured study
// outcomes — so a process killed mid-run (SIGKILL included) resumes
// exactly where it stopped instead of restarting from zero.
//
// Snapshot files are journaled in the write-ahead sense: a snapshot is
// first written to a temporary file in the target directory, fsynced,
// and then atomically renamed over the previous snapshot (the
// directory is fsynced too). A reader therefore always sees either the
// previous complete snapshot or the new complete snapshot, never a
// torn mix — the invariant the kill-and-restart harness depends on.
//
// The on-disk format is versioned and self-checksummed:
//
//	pattyckpt\n
//	<crc32c-hex> <payload-length>\n
//	<payload bytes>            (JSON: {"version":1,"kind":...,"data":...})
//
// The CRC covers the whole payload, so any truncation, bit flip or
// partial write — at any byte offset, header or payload — surfaces as
// a typed ErrCorruptCheckpoint, never as a panic or a silently partial
// load (TestCheckpointCorruptionEveryOffset proves this byte by byte).
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Version is the current snapshot format version.
const Version = 1

// magic is the first line of every snapshot file.
const magic = "pattyckpt"

var (
	// ErrCorruptCheckpoint marks a snapshot that is truncated, bit-
	// flipped or otherwise unreadable. Callers treat it as "no usable
	// checkpoint": start fresh rather than trust partial state.
	ErrCorruptCheckpoint = errors.New("checkpoint: corrupt or truncated snapshot")
	// ErrKindMismatch marks a structurally valid snapshot written for a
	// different purpose (e.g. loading a fuzz-sweep checkpoint as tuner
	// state). Distinct from corruption: the file is fine, the caller is
	// wrong.
	ErrKindMismatch = errors.New("checkpoint: snapshot kind mismatch")
)

// envelope is the checksummed JSON payload.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Data    json.RawMessage `json:"data"`
}

// castagnoli is the CRC-32C table (same polynomial iSCSI/ext4 use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode renders a snapshot to its on-disk byte form.
func Encode(kind string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal %q: %w", kind, err)
	}
	payload, err := json.Marshal(envelope{Version: Version, Kind: kind, Data: data})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n%08x %d\n", magic, crc32.Checksum(payload, castagnoli), len(payload))
	b.Write(payload)
	return b.Bytes(), nil
}

// Decode parses bytes produced by Encode into v, enforcing magic,
// version, checksum, exact length and kind.
func Decode(raw []byte, kind string, v any) error {
	rest, ok := bytes.CutPrefix(raw, []byte(magic+"\n"))
	if !ok {
		return fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return fmt.Errorf("%w: truncated header", ErrCorruptCheckpoint)
	}
	header, payload := string(rest[:nl]), rest[nl+1:]
	fields := strings.Fields(header)
	if len(fields) != 2 {
		return fmt.Errorf("%w: malformed header %q", ErrCorruptCheckpoint, header)
	}
	wantSum, err := strconv.ParseUint(fields[0], 16, 32)
	if err != nil {
		return fmt.Errorf("%w: bad checksum field", ErrCorruptCheckpoint)
	}
	wantLen, err := strconv.Atoi(fields[1])
	if err != nil || wantLen < 0 {
		return fmt.Errorf("%w: bad length field", ErrCorruptCheckpoint)
	}
	if len(payload) != wantLen {
		return fmt.Errorf("%w: payload is %d byte(s), header says %d",
			ErrCorruptCheckpoint, len(payload), wantLen)
	}
	if got := crc32.Checksum(payload, castagnoli); got != uint32(wantSum) {
		return fmt.Errorf("%w: checksum %08x, want %08x", ErrCorruptCheckpoint, got, wantSum)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return fmt.Errorf("%w: payload: %v", ErrCorruptCheckpoint, err)
	}
	if env.Version != Version {
		return fmt.Errorf("%w: snapshot version %d, this build reads %d",
			ErrCorruptCheckpoint, env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("%w: snapshot holds %q, caller wants %q", ErrKindMismatch, env.Kind, kind)
	}
	if err := json.Unmarshal(env.Data, v); err != nil {
		return fmt.Errorf("%w: data: %v", ErrCorruptCheckpoint, err)
	}
	return nil
}

// Save atomically writes a snapshot of v to path: temp file in the
// same directory, fsync, rename, directory fsync. A crash at any
// instant leaves either the old snapshot or the new one.
func Save(path, kind string, v any) error {
	raw, err := Encode(kind, v)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Persist the rename itself; best-effort where the platform does
	// not support fsync on directories.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads the snapshot at path into v. A missing file reports
// fs.ErrNotExist (check with os.IsNotExist / errors.Is); any damaged
// file reports ErrCorruptCheckpoint.
func Load(path, kind string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := Decode(raw, kind, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
