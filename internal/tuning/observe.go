package tuning

import (
	"math"
	"strconv"
	"strings"

	"patty/internal/evalcache"
	"patty/internal/obs"
)

// ConfigMetrics is the observability record of one objective
// evaluation: the assignment, its measured cost, and the per-pattern
// analysis digested from the collector snapshot taken right after the
// workload ran.
type ConfigMetrics struct {
	Assignment map[string]int
	Cost       float64
	Analyses   []obs.PatternAnalysis
	// Faulted marks a tainted measurement: the objective panicked, or
	// the fault-layer counters recorded lost work (errors, timeouts or
	// drained items) during the run. Faulted configurations keep their
	// record — the trace shows WHICH configurations fault — but their
	// cost is +Inf so no tuner ever walks toward one.
	Faulted bool
}

// Observed couples an Objective with the obs.Collector its workload
// writes into, closing the feedback loop the paper's process model
// ends on (Fig. 4c): instead of treating each configuration as a
// black-box wall-clock number, every evaluation resets the collector,
// runs the workload, and digests a snapshot into per-pattern stage
// utilizations, queue pressure and worker imbalance.
//
// Two consumers exist today: Metrics is the per-configuration metrics
// trace (internal/report renders it as the bottleneck table), and
// LinearSearch.Observer uses the last analysis to early-stop dimension
// sweeps whose remaining candidates are dominated.
type Observed struct {
	// Collector is the collector the instrumented patterns record
	// into. Must be non-nil; the workload's patterns are attached to
	// it via their Instrument methods.
	Collector *obs.Collector
	// Metrics accumulates one entry per distinct evaluated
	// configuration, in evaluation order.
	Metrics []ConfigMetrics

	// Cache, when non-nil, is the persistent content-addressed
	// evaluation store: Wrap consults it before measuring and journals
	// every fresh measurement into it. CacheProgram and CacheSeed
	// complete the (program, config, seed) address; CacheTenant
	// attributes hits for the per-tenant counters.
	Cache        *evalcache.Store
	CacheProgram string
	CacheSeed    int64
	CacheTenant  string

	byKey map[string][]obs.PatternAnalysis
}

// Wrap returns an Objective that resets the collector, delegates to
// obj (which must run the instrumented workload), then snapshots and
// analyzes the run. The evaluator caches costs by assignment, so a
// repeated assignment reuses the analysis of its first run (see
// AnalysesFor).
//
// Faults are penalized but recorded: a panicking objective — or one
// whose run left lost work in the fault-layer counters (errors,
// timeouts, drained items) — still produces a ConfigMetrics entry and
// an analysis, but its cost becomes +Inf so search never converges on
// a configuration that only looks fast because it crashed early.
// Healed retries alone do not penalize: the result was correct and
// the retry latency is already inside the measured cost.
// When Cache is set, a hit short-circuits the measurement entirely:
// the entry's cost (with Faulted mapped back to +Inf) is returned and
// recorded in Metrics with a nil analysis — the search trajectory is
// unchanged because costs are deterministic per (program, config,
// seed), only the work of re-measuring is skipped.
func (o *Observed) Wrap(obj Objective) Objective {
	return func(a map[string]int) float64 {
		if o.Cache != nil && o.CacheProgram != "" {
			key := evalcache.Key{Program: o.CacheProgram, Config: assignKey(a), Seed: o.CacheSeed}
			if e, ok := o.Cache.Get(key, o.CacheTenant); ok {
				cost := e.EffectiveCost()
				o.Metrics = append(o.Metrics, ConfigMetrics{
					Assignment: copyAssign(a),
					Cost:       cost,
					Faulted:    e.Faulted,
				})
				return cost
			}
		}
		o.Collector.Reset()
		cost, faulted := runObjective(obj, a)
		analyses := obs.Analyze(o.Collector.Snapshot())
		for _, an := range analyses {
			if an.FaultErrors > 0 || an.FaultTimeouts > 0 || an.FaultDrained > 0 {
				faulted = true
			}
		}
		if faulted {
			cost = math.Inf(1)
		}
		if o.byKey == nil {
			o.byKey = make(map[string][]obs.PatternAnalysis)
		}
		o.byKey[assignKey(a)] = analyses
		o.Metrics = append(o.Metrics, ConfigMetrics{
			Assignment: copyAssign(a),
			Cost:       cost,
			Analyses:   analyses,
			Faulted:    faulted,
		})
		if o.Cache != nil && o.CacheProgram != "" {
			// Journal the fresh measurement; Put is first-wins, so a
			// concurrent search writing the same key is harmless. +Inf is
			// not JSON-encodable — the Faulted flag carries it.
			o.Cache.Put(evalcache.Entry{
				Program: o.CacheProgram,
				Config:  assignKey(a),
				Seed:    o.CacheSeed,
				Cost:    finiteOr(cost, 0),
				Faulted: faulted,
				Tenant:  o.CacheTenant,
			})
		}
		return cost
	}
}

// finiteOr replaces a non-finite cost with fallback (the Faulted flag
// preserves the information).
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fallback
	}
	return v
}

// runObjective evaluates obj, converting a panic (a faulting workload
// under a FailFast policy crashes through the legacy entry points)
// into a faulted evaluation instead of killing the tuning loop.
func runObjective(obj Objective, a map[string]int) (cost float64, faulted bool) {
	defer func() {
		if r := recover(); r != nil {
			cost, faulted = math.Inf(1), true
		}
	}()
	return obj(a), false
}

// AnalysesFor returns the recorded analysis for an assignment, or nil
// when that assignment was never evaluated through Wrap.
func (o *Observed) AnalysesFor(a map[string]int) []obs.PatternAnalysis {
	if o == nil {
		return nil
	}
	return o.byKey[assignKey(a)]
}

// DominatesAbove reports whether every assignment that only increases
// dimension key beyond its value in a is dominated by a itself:
// the pipeline the key belongs to measured as saturated
// (obs.SaturationThreshold) at a bottleneck stage this parameter does
// not feed, so adding capacity along key cannot raise throughput.
// This is the pruning rule of Fonseca-style runtime-feedback tuners:
// only the bottleneck's own resources are worth sweeping.
//
// The rule fires for two pipeline capacity parameters:
//
//   - stage.<i>.replication when the saturated bottleneck is a stage
//     j != i (replicating a non-bottleneck stage is pure overhead);
//   - buffersize when any stage is saturated (a compute-bound
//     pipeline gains nothing from deeper queues).
//
// Worker-count parameters of masterworker/parallelfor are never
// pruned — adding workers attacks the busiest-worker bottleneck
// directly. Returns false when a was never observed.
func (o *Observed) DominatesAbove(key string, a map[string]int) bool {
	analyses := o.AnalysesFor(a)
	if len(analyses) == 0 {
		return false
	}
	parts := strings.Split(key, ".")
	if len(parts) < 3 || parts[0] != obs.KindPipeline {
		return false
	}
	var an *obs.PatternAnalysis
	for i := range analyses {
		if analyses[i].Kind == obs.KindPipeline && analyses[i].Name == parts[1] {
			an = &analyses[i]
			break
		}
	}
	if an == nil || !an.Saturated() {
		return false
	}
	switch {
	case len(parts) == 5 && parts[2] == "stage" && parts[4] == "replication":
		i, err := strconv.Atoi(parts[3])
		return err == nil && i != an.BottleneckStage
	case len(parts) == 3 && parts[2] == "buffersize":
		return true
	}
	return false
}
