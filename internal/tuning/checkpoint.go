package tuning

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sort"

	"patty/internal/checkpoint"
)

// CheckpointKind tags tuner-search snapshots in the checkpoint
// envelope, so a fuzz-sweep file can never be mistaken for one.
const CheckpointKind = "tuning-search"

// ErrCheckpointMismatch reports a checkpoint written by a different
// search (other algorithm, budget, dimensions or start point):
// resuming it would silently answer a different question.
var ErrCheckpointMismatch = errors.New("tuning: checkpoint belongs to a different search")

// SearchMeta pins the identity of a search. Two runs with equal meta
// and a deterministic tuner evaluate configurations in the same order,
// which is what makes resume-from-checkpoint converge to the same best
// as an uninterrupted run.
type SearchMeta struct {
	Algo   string         `json:"algo"`
	Budget int            `json:"budget"`
	Dims   []Dim          `json:"dims"`
	Start  map[string]int `json:"start"`
}

// Signature is the canonical comparable identity of a search: two
// runs with equal signatures answer the same question. The fleet
// protocol ships it with every shard so a worker's evaluation journal
// is never shared between different searches.
func (m SearchMeta) Signature() string { return m.signature() }

// signature is the canonical comparable form of a SearchMeta.
func (m SearchMeta) signature() string {
	dims := append([]Dim(nil), m.Dims...)
	sort.Slice(dims, func(i, j int) bool { return dims[i].Key < dims[j].Key })
	s := fmt.Sprintf("algo=%s;budget=%d;start=%s;", m.Algo, m.Budget, assignKey(m.Start))
	for _, d := range dims {
		s += fmt.Sprintf("dim=%s[%d..%d/%d];", d.Key, d.Min, d.Max, d.step())
	}
	return s
}

// EvalRecord is one completed objective evaluation. Faulted
// evaluations (cost +Inf under Observed) are stored with the flag
// instead of the non-JSON-encodable infinity.
type EvalRecord struct {
	Assignment map[string]int `json:"assignment"`
	Cost       float64        `json:"cost"`
	Faulted    bool           `json:"faulted,omitempty"`
}

// SearchState is the serialized progress of a tuning search: which
// configurations were measured, at what cost, and which ones the
// circuit breaker quarantined.
type SearchState struct {
	Meta        SearchMeta   `json:"meta"`
	Evals       []EvalRecord `json:"evals"`
	Quarantined []string     `json:"quarantined,omitempty"`
}

// Checkpointer makes a search resumable by journaling every objective
// evaluation to a snapshot file. Wrap sits between the tuner and the
// objective: a configuration already in the snapshot returns its
// recorded cost instantly (no re-measurement), so a restarted
// deterministic search fast-forwards through the completed prefix and
// continues exactly where the killed run stopped.
type Checkpointer struct {
	path string
	// Quarantine, when non-nil, supplies the currently quarantined
	// configuration keys (jobs.Breaker.Quarantined) to persist with
	// every snapshot.
	Quarantine func() []string

	state   SearchState
	cache   map[string]EvalRecord
	resumed int
	saveErr error
}

// NewCheckpointer opens or creates the snapshot at path for the given
// search. resumed reports how many completed evaluations were loaded.
// A snapshot for a different search fails with ErrCheckpointMismatch;
// a damaged snapshot fails with checkpoint.ErrCorruptCheckpoint — the
// caller decides whether to delete and start over.
func NewCheckpointer(path string, meta SearchMeta) (c *Checkpointer, resumed int, err error) {
	c = &Checkpointer{path: path, cache: make(map[string]EvalRecord)}
	c.state.Meta = meta
	err = checkpoint.Load(path, CheckpointKind, &c.state)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh run; first Save creates the file.
	case err != nil:
		return nil, 0, err
	default:
		if c.state.Meta.signature() != meta.signature() {
			return nil, 0, fmt.Errorf("%w: snapshot %q holds %s, this run is %s",
				ErrCheckpointMismatch, path, c.state.Meta.signature(), meta.signature())
		}
		for _, rec := range c.state.Evals {
			c.cache[assignKey(rec.Assignment)] = rec
		}
		c.resumed = len(c.state.Evals)
	}
	c.state.Meta = meta
	return c, c.resumed, nil
}

// Wrap interposes the journal: cached assignments replay their
// recorded cost, new assignments run obj and are persisted before the
// cost is returned to the search.
func (c *Checkpointer) Wrap(obj Objective) Objective {
	return func(a map[string]int) float64 {
		key := assignKey(a)
		if rec, ok := c.cache[key]; ok {
			return rec.cost()
		}
		cost := obj(a)
		rec := EvalRecord{Assignment: copyAssign(a), Cost: cost}
		if math.IsInf(cost, 1) || math.IsNaN(cost) || math.IsInf(cost, -1) {
			rec.Cost, rec.Faulted = 0, true
		}
		c.cache[key] = rec
		c.state.Evals = append(c.state.Evals, rec)
		if err := c.save(); err != nil && c.saveErr == nil {
			c.saveErr = err
		}
		return rec.cost()
	}
}

// Record journals an externally produced evaluation — the fleet
// coordinator merges worker-computed costs through it — without
// invoking an objective. A key already journaled is ignored, so merges
// are idempotent under duplicate shard completions. The snapshot is
// persisted by the next Flush; callers batch one Flush per merged
// shard instead of one write per evaluation.
func (c *Checkpointer) Record(a map[string]int, cost float64) {
	key := assignKey(a)
	if _, ok := c.cache[key]; ok {
		return
	}
	rec := EvalRecord{Assignment: copyAssign(a), Cost: cost}
	if math.IsInf(cost, 1) || math.IsNaN(cost) || math.IsInf(cost, -1) {
		rec.Cost, rec.Faulted = 0, true
	}
	c.cache[key] = rec
	c.state.Evals = append(c.state.Evals, rec)
}

// Correct overwrites the journaled cost of an assignment in place —
// the fleet coordinator's byzantine re-verification replaces a
// quarantined worker's lied costs with locally re-measured truth
// (Record alone cannot: it ignores keys already journaled, which is
// right for idempotent merges and wrong for repairs). An unknown key
// falls through to Record semantics. The snapshot is persisted by the
// next Flush.
func (c *Checkpointer) Correct(a map[string]int, cost float64) {
	key := assignKey(a)
	rec := EvalRecord{Assignment: copyAssign(a), Cost: cost}
	if math.IsInf(cost, 1) || math.IsNaN(cost) || math.IsInf(cost, -1) {
		rec.Cost, rec.Faulted = 0, true
	}
	if _, ok := c.cache[key]; !ok {
		c.cache[key] = rec
		c.state.Evals = append(c.state.Evals, rec)
		return
	}
	c.cache[key] = rec
	for i := range c.state.Evals {
		if assignKey(c.state.Evals[i].Assignment) == key {
			c.state.Evals[i] = rec
			break
		}
	}
}

// Lookup returns the journaled record for a canonical assignment key.
func (c *Checkpointer) Lookup(key string) (EvalRecord, bool) {
	rec, ok := c.cache[key]
	return rec, ok
}

// Records returns a copy of every journaled evaluation, in journal
// order — the fleet coordinator seeds its merge table from it on
// resume.
func (c *Checkpointer) Records() []EvalRecord {
	return append([]EvalRecord(nil), c.state.Evals...)
}

// EffectiveCost reconstructs the in-memory cost of a record (+Inf
// when the evaluation faulted).
func (r EvalRecord) EffectiveCost() float64 { return r.cost() }

// cost reconstructs the in-memory cost of a record.
func (r EvalRecord) cost() float64 {
	if r.Faulted {
		return math.Inf(1)
	}
	return r.Cost
}

// save snapshots the current state (including the live quarantine set).
func (c *Checkpointer) save() error {
	if c.Quarantine != nil {
		c.state.Quarantined = c.Quarantine()
	}
	return checkpoint.Save(c.path, CheckpointKind, &c.state)
}

// Flush persists the final state once more (picking up quarantine
// changes after the last evaluation) and reports the first error any
// save hit; a search whose journal could not be written must not
// advertise itself as resumable.
func (c *Checkpointer) Flush() error {
	if err := c.save(); err != nil && c.saveErr == nil {
		c.saveErr = err
	}
	return c.saveErr
}

// Explored is the number of distinct configurations measured across
// all runs of this search (resumed prefix included).
func (c *Checkpointer) Explored() int { return len(c.cache) }

// Resumed is the number of evaluations replayed from the snapshot.
func (c *Checkpointer) Resumed() int { return c.resumed }

// Quarantined returns the configuration keys the snapshot recorded as
// circuit-breaker quarantined, for Breaker.Restore on resume.
func (c *Checkpointer) Quarantined() []string {
	return append([]string(nil), c.state.Quarantined...)
}
