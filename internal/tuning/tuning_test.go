package tuning

import (
	"math"
	"path/filepath"
	"testing"

	"patty/internal/parrt"
)

// quadratic builds a smooth objective with a unique optimum.
func quadratic(opt map[string]int) Objective {
	return func(a map[string]int) float64 {
		c := 0.0
		for k, best := range opt {
			d := float64(a[k] - best)
			c += d * d
		}
		return c
	}
}

func dims2() []Dim {
	return []Dim{
		{Key: "x", Min: 0, Max: 16},
		{Key: "y", Min: 0, Max: 16},
	}
}

func start2() map[string]int { return map[string]int{"x": 0, "y": 0} }

func tuners() []Tuner {
	return []Tuner{LinearSearch{}, RandomSearch{Seed: 7}, TabuSearch{}, NelderMead{}}
}

func TestAllTunersFindQuadraticOptimum(t *testing.T) {
	opt := map[string]int{"x": 11, "y": 3}
	for _, tn := range tuners() {
		res := tn.Tune(dims2(), start2(), quadratic(opt), 600)
		if res.BestCost > 4 { // within distance 2 of the optimum
			t.Errorf("%s: best cost %f at %v", tn.Name(), res.BestCost, res.Best)
		}
		if res.Evaluations == 0 || res.Evaluations > 600 {
			t.Errorf("%s: evaluations = %d", tn.Name(), res.Evaluations)
		}
	}
}

func TestLinearSearchExactOnSeparableObjective(t *testing.T) {
	opt := map[string]int{"x": 5, "y": 13}
	res := LinearSearch{}.Tune(dims2(), start2(), quadratic(opt), 1000)
	if res.BestCost != 0 {
		t.Fatalf("linear search must solve separable objectives exactly: %v (%f)", res.Best, res.BestCost)
	}
}

func TestBudgetRespected(t *testing.T) {
	calls := 0
	obj := func(a map[string]int) float64 { calls++; return float64(a["x"]) }
	for _, tn := range tuners() {
		calls = 0
		res := tn.Tune([]Dim{{Key: "x", Min: 0, Max: 1000}}, map[string]int{"x": 500}, obj, 20)
		if calls > 20 {
			t.Errorf("%s: %d objective calls, budget 20", tn.Name(), calls)
		}
		if res.Evaluations != calls {
			t.Errorf("%s: Evaluations=%d calls=%d", tn.Name(), res.Evaluations, calls)
		}
	}
}

func TestTraceIsMonotone(t *testing.T) {
	res := LinearSearch{}.Tune(dims2(), start2(), quadratic(map[string]int{"x": 9, "y": 9}), 400)
	last := math.Inf(1)
	for _, p := range res.Trace {
		if p.Cost >= last {
			t.Fatalf("trace not strictly improving: %+v", res.Trace)
		}
		last = p.Cost
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
}

func TestStepRespected(t *testing.T) {
	obj := func(a map[string]int) float64 {
		if a["x"]%4 != 0 {
			t.Fatalf("evaluated off-lattice value %d", a["x"])
		}
		return float64(a["x"])
	}
	LinearSearch{}.Tune([]Dim{{Key: "x", Min: 0, Max: 16, Step: 4}}, map[string]int{"x": 8}, obj, 100)
	RandomSearch{Seed: 3}.Tune([]Dim{{Key: "x", Min: 0, Max: 16, Step: 4}}, map[string]int{"x": 8}, obj, 50)
}

func TestNelderMeadNoDims(t *testing.T) {
	res := NelderMead{}.Tune(nil, map[string]int{"x": 1}, func(map[string]int) float64 { return 42 }, 10)
	if res.BestCost != 42 || res.Evaluations != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	ps := parrt.NewParams()
	ps.Register(parrt.Param{Key: "pipeline.v.stage.0.replication", Kind: parrt.IntParam, Min: 1, Max: 8, Value: 2, Location: "video.go:10"})
	ps.Register(parrt.Param{Key: "pipeline.v.sequentialexecution", Kind: parrt.BoolParam, Min: 0, Max: 1, Value: 0})
	cfg := FromParams("video", ps)
	if len(cfg.Entries) != 2 || cfg.Program != "video" {
		t.Fatalf("cfg = %+v", cfg)
	}

	path := filepath.Join(t.TempDir(), "tuning.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 2 {
		t.Fatalf("loaded = %+v", loaded)
	}

	// Apply restores values into a fresh registry — including before
	// pattern construction (the recompilation-free tuning property).
	ps2 := parrt.NewParams()
	loaded.Apply(ps2)
	if ps2.Get("pipeline.v.stage.0.replication", -1) != 2 {
		t.Fatal("value not applied")
	}
	p := ps2.Register(parrt.Param{Key: "pipeline.v.stage.0.replication", Kind: parrt.IntParam, Min: 1, Max: 8, Value: 1})
	if p.Value != 2 {
		t.Fatal("tuned value lost on registration")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDimsFromParams(t *testing.T) {
	ps := parrt.NewParams()
	ps.Register(parrt.Param{Key: "a", Kind: parrt.IntParam, Min: 1, Max: 8, Value: 1})
	ps.Register(parrt.Param{Key: "fixed", Kind: parrt.IntParam, Min: 3, Max: 3, Value: 3})
	dims := DimsFromParams(ps)
	if len(dims) != 1 || dims[0].Key != "a" {
		t.Fatalf("dims = %+v", dims)
	}
}

// TestTunePipelineEndToEnd drives a real (virtual-cost) objective: a
// pipeline simulation where sequential execution is costly, the right
// replication helps, and over-replication adds overhead.
func TestTunePipelineEndToEnd(t *testing.T) {
	obj := func(a map[string]int) float64 {
		if a["seq"] == 1 {
			return 1000
		}
		r := a["repl"]
		hot := 600.0 / float64(r)
		overhead := 20.0 * float64(r)
		return hot + overhead + 100
	}
	dims := []Dim{
		{Key: "seq", Min: 0, Max: 1},
		{Key: "repl", Min: 1, Max: 8},
	}
	for _, tn := range tuners() {
		res := tn.Tune(dims, map[string]int{"seq": 1, "repl": 1}, obj, 200)
		if res.Best["seq"] != 0 {
			t.Errorf("%s: kept sequential execution", tn.Name())
		}
		if res.Best["repl"] < 4 || res.Best["repl"] > 7 {
			t.Errorf("%s: replication = %d, optimum is 5-6", tn.Name(), res.Best["repl"])
		}
	}
}
