// Package tuning implements Patty's performance-validation phase: the
// tuning configuration file (paper Fig. 3c) and the auto-tuning cycle
// (Fig. 4c) that repeatedly initializes the parallel patterns with
// parameter values, measures, and proposes new values — adapting the
// application to the target multicore platform without recompilation.
//
// The paper's tuner "explores the search space linearly in each
// dimension"; that algorithm ships as LinearSearch. The smarter
// algorithms the paper names as future work ([29] Karcher/Pankratius,
// [30] Nelder-Mead, [31] tabu search) are implemented as NelderMead,
// TabuSearch and RandomSearch and compared in the E11 ablation bench.
package tuning

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"patty/internal/parrt"
)

// ErrAllConfigsFaulted reports a search in which every evaluated
// configuration faulted (Observed gives faulted runs +Inf cost): there
// is no meaningful best, and Result.Best is only the start assignment
// echoed back. Callers must treat the run as failed rather than apply
// that configuration.
var ErrAllConfigsFaulted = errors.New("tuning: every evaluated configuration faulted; no usable best")

// Entry is one tuning parameter as serialized to the configuration
// file: key, code location, domain and current value.
type Entry struct {
	Key      string   `json:"key"`
	Location string   `json:"location,omitempty"`
	Kind     string   `json:"kind"`
	Min      int      `json:"min"`
	Max      int      `json:"max"`
	Step     int      `json:"step,omitempty"`
	Choices  []string `json:"choices,omitempty"`
	Value    int      `json:"value"`
}

// Config is the on-disk tuning configuration.
type Config struct {
	// Program documents which binary the configuration belongs to.
	Program string  `json:"program,omitempty"`
	Entries []Entry `json:"parameters"`
}

// FromParams snapshots a registry into a Config.
func FromParams(program string, ps *parrt.Params) *Config {
	cfg := &Config{Program: program}
	for _, p := range ps.All() {
		cfg.Entries = append(cfg.Entries, Entry{
			Key: p.Key, Location: p.Location, Kind: p.Kind.String(),
			Min: p.Min, Max: p.Max, Step: p.Step, Choices: p.Choices, Value: p.Value,
		})
	}
	return cfg
}

// Apply writes the configuration's values into a registry. Unknown
// keys are created so that values survive even when loaded before the
// patterns are constructed (parrt.Register keeps tuned values).
func (c *Config) Apply(ps *parrt.Params) {
	for _, e := range c.Entries {
		ps.Set(e.Key, e.Value)
	}
}

// Save writes the configuration as JSON.
func (c *Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("tuning: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a configuration from disk.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tuning: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("tuning: %s: %w", path, err)
	}
	return &c, nil
}

// Objective measures one configuration: it applies the assignment,
// runs the workload, and returns the cost (lower is better; typically
// nanoseconds or virtual ticks). Tuners only ever see this function.
type Objective func(assignment map[string]int) float64

// Dim describes one tunable dimension of the search space.
type Dim struct {
	Key  string
	Min  int
	Max  int
	Step int
}

func (d Dim) step() int {
	if d.Step <= 0 {
		return 1
	}
	return d.Step
}

// DimsFromParams derives the search space from a registry.
func DimsFromParams(ps *parrt.Params) []Dim {
	var dims []Dim
	for _, p := range ps.All() {
		if p.Min == p.Max {
			continue // nothing to tune
		}
		dims = append(dims, Dim{Key: p.Key, Min: p.Min, Max: p.Max, Step: p.Step})
	}
	return dims
}

// Result is a tuning run's outcome.
type Result struct {
	Best        map[string]int
	BestCost    float64
	Evaluations int
	// Trace records (evaluation index, cost) pairs of improving steps
	// for the Fig. 4c runtime-tuning visualization.
	Trace []TracePoint
	// Pruned counts candidate configurations skipped without
	// evaluation because runtime metrics proved them dominated
	// (LinearSearch with an Observer; see Observed.DominatesAbove).
	Pruned int
	// Interrupted is set when the search stopped because its context
	// was canceled (SIGINT, job cancellation, deadline): Best is the
	// best-so-far configuration, not the converged one.
	Interrupted bool
	// Err is ErrAllConfigsFaulted when at least one configuration was
	// evaluated and every single one faulted — Best is meaningless.
	Err error
}

// TracePoint is one improving step of a tuning run.
type TracePoint struct {
	Eval int
	Cost float64
}

// Tuner is a search algorithm over the parameter space.
type Tuner interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Tune searches the space defined by dims, starting from start,
	// calling obj at most budget times.
	Tune(dims []Dim, start map[string]int, obj Objective, budget int) Result
	// TuneCtx is Tune with cooperative cancellation: the search stops
	// at the next evaluation boundary once ctx is done and returns the
	// best-so-far Result with Interrupted set.
	TuneCtx(ctx context.Context, dims []Dim, start map[string]int, obj Objective, budget int) Result
}

// --- helpers shared by the tuners ---

type evaluator struct {
	ctx    context.Context
	obj    Objective
	budget int
	res    Result
	cache  map[string]float64
	// requests counts eval calls including cache hits; it backstops
	// termination for searches that revisit a fully cached space.
	requests int
}

func newEvaluator(ctx context.Context, obj Objective, budget int, start map[string]int) *evaluator {
	e := &evaluator{ctx: ctx, obj: obj, budget: budget, cache: make(map[string]float64)}
	e.res.Best = copyAssign(start)
	e.res.BestCost = math.Inf(1)
	return e
}

func (e *evaluator) exhausted() bool {
	return e.ctx.Err() != nil || e.res.Evaluations >= e.budget || e.requests >= 20*e.budget
}

// finish finalizes the shared Result: flags interruption and the
// all-configurations-faulted condition.
func (e *evaluator) finish() Result {
	e.res.Interrupted = e.ctx.Err() != nil
	if e.res.Evaluations > 0 && math.IsInf(e.res.BestCost, 1) {
		e.res.Err = ErrAllConfigsFaulted
	}
	return e.res
}

func (e *evaluator) eval(a map[string]int) float64 {
	e.requests++
	key := assignKey(a)
	if c, ok := e.cache[key]; ok {
		return c
	}
	if e.exhausted() {
		return math.Inf(1)
	}
	c := e.obj(a)
	e.res.Evaluations++
	e.cache[key] = c
	if c < e.res.BestCost {
		e.res.BestCost = c
		e.res.Best = copyAssign(a)
		e.res.Trace = append(e.res.Trace, TracePoint{Eval: e.res.Evaluations, Cost: c})
	}
	return c
}

func copyAssign(a map[string]int) map[string]int {
	out := make(map[string]int, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// AssignKey renders an assignment in canonical form — sorted
// "key=value;" pairs — the identity under which configurations are
// cached, checkpointed and circuit-breaker quarantined.
func AssignKey(a map[string]int) string { return assignKey(a) }

func assignKey(a map[string]int) string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d;", k, a[k])
	}
	return s
}

func clampDim(d Dim, v int) int {
	if v < d.Min {
		return d.Min
	}
	if v > d.Max {
		return d.Max
	}
	return v
}

// LinearSearch is the paper's baseline: optimize one dimension at a
// time by sweeping its whole range while holding the others fixed,
// then move to the next dimension, cycling until the budget is spent
// or a full cycle brings no improvement.
type LinearSearch struct {
	// Observer, when non-nil, supplies runtime metrics for each
	// evaluated configuration (wire the workload through
	// Observer.Wrap). The search then cuts each ascending dimension
	// sweep as soon as the measured analysis proves the remaining
	// larger values dominated — the workload's bottleneck is already
	// saturated somewhere this dimension cannot relieve. Skipped
	// candidates are counted in Result.Pruned.
	Observer *Observed
}

// Name implements Tuner.
func (LinearSearch) Name() string { return "linear" }

// Tune implements Tuner.
func (ls LinearSearch) Tune(dims []Dim, start map[string]int, obj Objective, budget int) Result {
	return ls.TuneCtx(context.Background(), dims, start, obj, budget)
}

// TuneCtx implements Tuner.
func (ls LinearSearch) TuneCtx(ctx context.Context, dims []Dim, start map[string]int, obj Objective, budget int) Result {
	e := newEvaluator(ctx, obj, budget, start)
	cur := copyAssign(start)
	e.eval(cur)
	for improved := true; improved && !e.exhausted(); {
		improved = false
		for _, d := range dims {
			bestV, bestC := cur[d.Key], math.Inf(1)
			for v := d.Min; v <= d.Max; v += d.step() {
				cand := copyAssign(cur)
				cand[d.Key] = v
				c := e.eval(cand)
				if c < bestC {
					bestC, bestV = c, v
				}
				if e.exhausted() {
					break
				}
				if ls.Observer != nil && v < d.Max && ls.Observer.DominatesAbove(d.Key, cand) {
					e.res.Pruned += (d.Max - v) / d.step()
					break
				}
			}
			if bestV != cur[d.Key] {
				cur[d.Key] = bestV
				improved = true
			}
			if e.exhausted() {
				break
			}
		}
	}
	return e.finish()
}

// RandomSearch samples uniformly — the sanity baseline every smarter
// algorithm has to beat.
type RandomSearch struct {
	// Seed makes runs reproducible; 0 means seed 1.
	Seed int64
}

// Name implements Tuner.
func (r RandomSearch) Name() string { return "random" }

// Tune implements Tuner.
func (r RandomSearch) Tune(dims []Dim, start map[string]int, obj Objective, budget int) Result {
	return r.TuneCtx(context.Background(), dims, start, obj, budget)
}

// TuneCtx implements Tuner.
func (r RandomSearch) TuneCtx(ctx context.Context, dims []Dim, start map[string]int, obj Objective, budget int) Result {
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	e := newEvaluator(ctx, obj, budget, start)
	e.eval(start)
	for !e.exhausted() {
		cand := copyAssign(start)
		for _, d := range dims {
			steps := (d.Max-d.Min)/d.step() + 1
			cand[d.Key] = d.Min + rng.Intn(steps)*d.step()
		}
		e.eval(cand)
	}
	return e.finish()
}

// TabuSearch is a local search that never revisits recently seen
// configurations (Glover's tabu list, paper ref [31]).
type TabuSearch struct {
	// Tenure is the tabu list length (default 16).
	Tenure int
}

// Name implements Tuner.
func (t TabuSearch) Name() string { return "tabu" }

// Tune implements Tuner.
func (t TabuSearch) Tune(dims []Dim, start map[string]int, obj Objective, budget int) Result {
	return t.TuneCtx(context.Background(), dims, start, obj, budget)
}

// TuneCtx implements Tuner.
func (t TabuSearch) TuneCtx(ctx context.Context, dims []Dim, start map[string]int, obj Objective, budget int) Result {
	tenure := t.Tenure
	if tenure <= 0 {
		tenure = 16
	}
	e := newEvaluator(ctx, obj, budget, start)
	cur := copyAssign(start)
	e.eval(cur)
	tabu := map[string]bool{assignKey(cur): true}
	var order []string
	for !e.exhausted() {
		type move struct {
			a map[string]int
			c float64
		}
		var bestMove *move
		for _, d := range dims {
			for _, delta := range []int{-d.step(), d.step()} {
				cand := copyAssign(cur)
				cand[d.Key] = clampDim(d, cand[d.Key]+delta)
				key := assignKey(cand)
				if tabu[key] {
					continue
				}
				c := e.eval(cand)
				if bestMove == nil || c < bestMove.c {
					bestMove = &move{cand, c}
				}
				if e.exhausted() {
					break
				}
			}
			if e.exhausted() {
				break
			}
		}
		if bestMove == nil {
			break // everything neighbouring is tabu
		}
		cur = bestMove.a
		key := assignKey(cur)
		tabu[key] = true
		order = append(order, key)
		if len(order) > tenure {
			delete(tabu, order[0])
			order = order[1:]
		}
	}
	return e.finish()
}

// NelderMead is the derivative-free downhill-simplex method (paper
// ref [30]) on the integer lattice: vertices round to the nearest
// valid lattice point before evaluation.
type NelderMead struct{}

// Name implements Tuner.
func (NelderMead) Name() string { return "nelder-mead" }

// Tune implements Tuner.
func (nm NelderMead) Tune(dims []Dim, start map[string]int, obj Objective, budget int) Result {
	return nm.TuneCtx(context.Background(), dims, start, obj, budget)
}

// TuneCtx implements Tuner.
func (NelderMead) TuneCtx(ctx context.Context, dims []Dim, start map[string]int, obj Objective, budget int) Result {
	e := newEvaluator(ctx, obj, budget, start)
	n := len(dims)
	if n == 0 {
		e.eval(start)
		return e.finish()
	}
	rng := rand.New(rand.NewSource(1))

	toAssign := func(x []float64) map[string]int {
		a := copyAssign(start)
		for i, d := range dims {
			v := int(math.Round(x[i]))
			v = d.Min + ((v-d.Min)/d.step())*d.step()
			a[d.Key] = clampDim(d, v)
		}
		return a
	}
	evalX := func(x []float64) float64 { return e.eval(toAssign(x)) }

	// Initial simplex: start plus one vertex stepped in each dimension.
	simplex := make([][]float64, n+1)
	costs := make([]float64, n+1)
	base := make([]float64, n)
	for i, d := range dims {
		base[i] = float64(start[d.Key])
	}
	simplex[0] = append([]float64(nil), base...)
	for i := 0; i < n; i++ {
		v := append([]float64(nil), base...)
		span := float64(dims[i].Max-dims[i].Min) / 2
		if span < float64(dims[i].step()) {
			span = float64(dims[i].step())
		}
		v[i] = math.Min(v[i]+span, float64(dims[i].Max))
		if v[i] == base[i] {
			v[i] = math.Max(base[i]-span, float64(dims[i].Min))
		}
		simplex[i+1] = v
	}
	for i := range simplex {
		costs[i] = evalX(simplex[i])
	}

	for !e.exhausted() {
		idx := make([]int, n+1)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return costs[idx[a]] < costs[idx[b]] })
		bestI, worstI := idx[0], idx[n]

		centroid := make([]float64, n)
		for _, i := range idx[:n] {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i][j] / float64(n)
			}
		}
		reflect := make([]float64, n)
		for j := 0; j < n; j++ {
			reflect[j] = centroid[j] + (centroid[j] - simplex[worstI][j])
		}
		rc := evalX(reflect)
		switch {
		case rc < costs[bestI]:
			expand := make([]float64, n)
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + 2*(centroid[j]-simplex[worstI][j])
			}
			ec := evalX(expand)
			if ec < rc {
				simplex[worstI], costs[worstI] = expand, ec
			} else {
				simplex[worstI], costs[worstI] = reflect, rc
			}
		case rc < costs[idx[n-1]]:
			simplex[worstI], costs[worstI] = reflect, rc
		default:
			contract := make([]float64, n)
			for j := 0; j < n; j++ {
				contract[j] = centroid[j] + 0.5*(simplex[worstI][j]-centroid[j])
			}
			cc := evalX(contract)
			if cc < costs[worstI] {
				simplex[worstI], costs[worstI] = contract, cc
			} else {
				// Shrink toward the best vertex.
				for _, i := range idx[1:] {
					for j := 0; j < n; j++ {
						simplex[i][j] = simplex[bestI][j] + 0.5*(simplex[i][j]-simplex[bestI][j])
					}
					costs[i] = evalX(simplex[i])
					if e.exhausted() {
						break
					}
				}
			}
		}
		// Degenerate simplex (all vertices round to the same lattice
		// point): restart from a random point with the remaining
		// budget — NM plateaus easily on small discrete spaces.
		same := true
		k0 := assignKey(toAssign(simplex[0]))
		for _, v := range simplex[1:] {
			if assignKey(toAssign(v)) != k0 {
				same = false
				break
			}
		}
		if same {
			for i := range simplex {
				v := make([]float64, n)
				for j, d := range dims {
					steps := (d.Max-d.Min)/d.step() + 1
					v[j] = float64(d.Min + rng.Intn(steps)*d.step())
				}
				if i == 0 {
					// Keep the incumbent best as one vertex.
					for j, d := range dims {
						v[j] = float64(e.res.Best[d.Key])
					}
				}
				simplex[i] = v
				costs[i] = evalX(v)
				if e.exhausted() {
					break
				}
			}
		}
	}
	return e.finish()
}
