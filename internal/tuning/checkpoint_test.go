package tuning

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"patty/internal/checkpoint"
)

// rastrigin-ish deterministic objective with a unique optimum.
func bowl(a map[string]int) float64 {
	x, y := float64(a["x"]-7), float64(a["y"]-3)
	return x*x + 2*y*y + 5
}

func bowlDims() []Dim {
	return []Dim{{Key: "x", Min: 0, Max: 15}, {Key: "y", Min: 0, Max: 15}}
}

func bowlStart() map[string]int { return map[string]int{"x": 0, "y": 15} }

func TestTuneCtxCancelReturnsBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	obj := func(a map[string]int) float64 {
		evals++
		if evals == 5 {
			cancel()
		}
		return bowl(a)
	}
	res := LinearSearch{}.TuneCtx(ctx, bowlDims(), bowlStart(), obj, 500)
	if !res.Interrupted {
		t.Fatal("canceled search must report Interrupted")
	}
	if evals > 6 {
		t.Fatalf("search kept evaluating after cancel: %d evals", evals)
	}
	if res.Best == nil || math.IsInf(res.BestCost, 1) {
		t.Fatalf("canceled search must keep best-so-far, got %+v", res)
	}
}

func TestAllConfigsFaultedTyped(t *testing.T) {
	faulting := func(map[string]int) float64 { return math.Inf(1) }
	res := LinearSearch{}.Tune(bowlDims(), bowlStart(), faulting, 40)
	if !errors.Is(res.Err, ErrAllConfigsFaulted) {
		t.Fatalf("all-faulted search: Err = %v, want ErrAllConfigsFaulted", res.Err)
	}
	// A healthy ridge clears the condition (reachable one dimension at
	// a time, which is how LinearSearch walks).
	oneGood := func(a map[string]int) float64 {
		if a["x"] == 7 {
			return float64(1 + (a["y"]-3)*(a["y"]-3))
		}
		return math.Inf(1)
	}
	res = LinearSearch{}.Tune(bowlDims(), bowlStart(), oneGood, 200)
	if res.Err != nil {
		t.Fatalf("search with a healthy config must not error: %v", res.Err)
	}
	if res.Best["x"] != 7 || res.Best["y"] != 3 {
		t.Fatalf("best %v, want the healthy config", res.Best)
	}
}

// TestCheckpointResumeConvergesIdentically is the package-level half
// of the kill-and-restart contract: interrupt a checkpointed search
// mid-run, resume it from the snapshot, and require the identical best
// configuration (and no fewer explored configs) as an uninterrupted
// run — without re-measuring the completed prefix.
func TestCheckpointResumeConvergesIdentically(t *testing.T) {
	for _, tn := range []Tuner{LinearSearch{}, TabuSearch{}, RandomSearch{Seed: 7}, NelderMead{}} {
		t.Run(tn.Name(), func(t *testing.T) {
			meta := SearchMeta{Algo: tn.Name(), Budget: 120, Dims: bowlDims(), Start: bowlStart()}

			// Reference: uninterrupted, no checkpoint.
			ref := tn.Tune(meta.Dims, meta.Start, bowl, meta.Budget)

			// Interrupted: cancel after 9 fresh evaluations.
			path := filepath.Join(t.TempDir(), "search.ckpt")
			ck1, resumed, err := NewCheckpointer(path, meta)
			if err != nil || resumed != 0 {
				t.Fatalf("fresh checkpointer: resumed=%d err=%v", resumed, err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			fresh := 0
			counting := func(a map[string]int) float64 {
				fresh++
				if fresh == 9 {
					cancel()
				}
				return bowl(a)
			}
			half := tn.TuneCtx(ctx, meta.Dims, meta.Start, ck1.Wrap(counting), meta.Budget)
			if !half.Interrupted {
				t.Fatal("first leg should have been interrupted")
			}
			if err := ck1.Flush(); err != nil {
				t.Fatal(err)
			}

			// Resume: a brand-new checkpointer over the same file.
			ck2, resumed, err := NewCheckpointer(path, meta)
			if err != nil {
				t.Fatal(err)
			}
			if resumed == 0 {
				t.Fatal("resume loaded no completed evaluations")
			}
			rerun := 0
			res := tn.Tune(meta.Dims, meta.Start, ck2.Wrap(func(a map[string]int) float64 {
				rerun++
				return bowl(a)
			}), meta.Budget)

			if AssignKey(res.Best) != AssignKey(ref.Best) || res.BestCost != ref.BestCost {
				t.Fatalf("resumed best %v (%.1f) != uninterrupted best %v (%.1f)",
					res.Best, res.BestCost, ref.Best, ref.BestCost)
			}
			if ck2.Explored() < ref.Evaluations {
				t.Fatalf("resumed run explored %d configs, uninterrupted run %d",
					ck2.Explored(), ref.Evaluations)
			}
			if rerun+resumed != ck2.Explored() {
				t.Fatalf("resume re-measured the prefix: %d fresh + %d resumed != %d explored",
					rerun, resumed, ck2.Explored())
			}
		})
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	meta := SearchMeta{Algo: "linear", Budget: 50, Dims: bowlDims(), Start: bowlStart()}
	ck, _, err := NewCheckpointer(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	ck.Wrap(bowl)(bowlStart())
	other := meta
	other.Budget = 99
	if _, _, err := NewCheckpointer(path, other); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("budget change: got %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointQuarantinePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	meta := SearchMeta{Algo: "linear", Budget: 50, Dims: bowlDims(), Start: bowlStart()}
	ck, _, err := NewCheckpointer(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	ck.Quarantine = func() []string { return []string{"x=1;y=2;"} }
	ck.Wrap(bowl)(bowlStart())
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	ck2, _, err := NewCheckpointer(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if q := ck2.Quarantined(); len(q) != 1 || q[0] != "x=1;y=2;" {
		t.Fatalf("quarantine set lost: %v", q)
	}
}

func TestCheckpointCorruptSurfacesTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	meta := SearchMeta{Algo: "linear", Budget: 50, Dims: bowlDims(), Start: bowlStart()}
	ck, _, err := NewCheckpointer(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	ck.Wrap(bowl)(bowlStart())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewCheckpointer(path, meta); !errors.Is(err, checkpoint.ErrCorruptCheckpoint) {
		t.Fatalf("truncated snapshot: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCheckpointCorrectOverwrites: Correct replaces an already-journaled
// cost in place (Record ignores known keys by design); the repaired
// value survives a flush/reload cycle and unknown keys fall through to
// Record semantics. This is the fleet coordinator's byzantine repair
// path: a quarantined worker's lied costs are overwritten with locally
// re-measured truth.
func TestCheckpointCorrectOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	meta := SearchMeta{Algo: "linear", Budget: 10, Dims: bowlDims(), Start: bowlStart()}
	ck, _, err := NewCheckpointer(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]int{"x": 1, "y": 2}
	b := map[string]int{"x": 3, "y": 4}
	ck.Record(a, 100) // the lie
	ck.Record(b, 50)

	// Record is merge-idempotent: it must NOT repair the lie.
	ck.Record(a, 42)
	if rec, _ := ck.Lookup(AssignKey(a)); rec.Cost != 100 {
		t.Fatalf("Record overwrote a journaled key: %+v", rec)
	}

	ck.Correct(a, 42) // the repair
	if rec, _ := ck.Lookup(AssignKey(a)); rec.Cost != 42 {
		t.Fatalf("Correct did not overwrite: %+v", rec)
	}
	// Correcting to a faulted cost stores the flag, not the Inf.
	ck.Correct(b, math.Inf(1))
	if rec, _ := ck.Lookup(AssignKey(b)); !rec.Faulted || rec.Cost != 0 {
		t.Fatalf("Correct to +Inf not stored as faulted: %+v", rec)
	}
	// Unknown key: Correct degrades to Record.
	c := map[string]int{"x": 5, "y": 6}
	ck.Correct(c, 7)
	if rec, ok := ck.Lookup(AssignKey(c)); !ok || rec.Cost != 7 {
		t.Fatalf("Correct on unknown key: %+v ok=%v", rec, ok)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	// The journal on disk holds the corrected values, once each.
	ck2, resumed, err := NewCheckpointer(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 3 {
		t.Fatalf("resumed %d evals, want 3 (corrections must not duplicate entries)", resumed)
	}
	if rec, _ := ck2.Lookup(AssignKey(a)); rec.Cost != 42 {
		t.Fatalf("corrected cost not persisted: %+v", rec)
	}
	if rec, _ := ck2.Lookup(AssignKey(b)); !rec.Faulted {
		t.Fatalf("corrected fault flag not persisted: %+v", rec)
	}
}
