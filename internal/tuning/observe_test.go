package tuning

import (
	"math"
	"testing"

	"patty/internal/obs"
)

// simPipeline models a two-stage pipeline deterministically: stage s
// costs serviceNs[s] per item per lane, the run processes items
// elements, and the wall time is the throughput bound
// max_s(total_s / replicas_s). Each evaluation writes exactly the
// metrics an instrumented parrt.Pipeline would record, so the test
// exercises the real Analyze -> DominatesAbove path without timing
// noise.
type simPipeline struct {
	collector *obs.Collector
	serviceNs [2]int64
	items     int64
	runs      int
}

func (s *simPipeline) run(a map[string]int) float64 {
	s.runs++
	repl := [2]int64{int64(a["pipeline.p.stage.0.replication"]), int64(a["pipeline.p.stage.1.replication"])}
	var wall int64
	for i := range s.serviceNs {
		if t := s.serviceNs[i] * s.items / repl[i]; t > wall {
			wall = t
		}
	}
	c := s.collector
	c.Counter("pipeline.p.wall_ns").Add(wall)
	for i := range s.serviceNs {
		st := c.Histogram("pipeline.p.stage." + string(rune('0'+i)) + ".service_ns")
		for j := int64(0); j < s.items; j++ {
			st.Record(s.serviceNs[i])
		}
		c.Gauge("pipeline.p.stage." + string(rune('0'+i)) + ".replicas").Set(repl[i])
	}
	return float64(wall)
}

func simDims() []Dim {
	return []Dim{
		{Key: "pipeline.p.stage.0.replication", Min: 1, Max: 4},
		{Key: "pipeline.p.stage.1.replication", Min: 1, Max: 4},
	}
}

func simStart() map[string]int {
	return map[string]int{
		"pipeline.p.stage.0.replication": 1,
		"pipeline.p.stage.1.replication": 1,
	}
}

// TestLinearSearchEarlyStopPrunesDominated is the acceptance test for
// bottleneck-based early stop: with stage 1 four times as expensive as
// stage 0, every configuration that replicates stage 0 while stage 1
// is saturated is dominated. The observed search must skip those
// configurations, spend fewer evaluations than the blind search, and
// still find the same optimum.
func TestLinearSearchEarlyStopPrunesDominated(t *testing.T) {
	blind := &simPipeline{collector: obs.New(), serviceNs: [2]int64{100, 400}, items: 100}
	blindRes := LinearSearch{}.Tune(simDims(), simStart(), blind.run, 100)

	sim := &simPipeline{collector: obs.New(), serviceNs: [2]int64{100, 400}, items: 100}
	o := &Observed{Collector: sim.collector}
	res := LinearSearch{Observer: o}.Tune(simDims(), simStart(), o.Wrap(sim.run), 100)

	if res.Pruned == 0 {
		t.Fatal("observer-guided search pruned nothing")
	}
	if res.Evaluations >= blindRes.Evaluations {
		t.Fatalf("observed search used %d evaluations, blind used %d — pruning saved nothing",
			res.Evaluations, blindRes.Evaluations)
	}
	if res.BestCost != blindRes.BestCost {
		t.Fatalf("observed best cost %.0f != blind best cost %.0f", res.BestCost, blindRes.BestCost)
	}
	// The optimum balances both stages: stage 1 fully replicated.
	if got := res.Best["pipeline.p.stage.1.replication"]; got != 4 {
		t.Fatalf("best stage-1 replication = %d, want 4 (assignment %v)", got, res.Best)
	}
	t.Logf("blind: %d evals; observed: %d evals, %d pruned", blindRes.Evaluations, res.Evaluations, res.Pruned)
}

// TestObservedMetricsTrace checks requirement (b): each evaluated
// configuration leaves one ConfigMetrics entry whose analysis carries
// the per-stage utilizations of that very run.
func TestObservedMetricsTrace(t *testing.T) {
	sim := &simPipeline{collector: obs.New(), serviceNs: [2]int64{100, 400}, items: 100}
	o := &Observed{Collector: sim.collector}
	res := LinearSearch{Observer: o}.Tune(simDims(), simStart(), o.Wrap(sim.run), 100)

	if len(o.Metrics) != res.Evaluations {
		t.Fatalf("metrics trace has %d entries, want %d (one per evaluation)",
			len(o.Metrics), res.Evaluations)
	}
	for i, m := range o.Metrics {
		if len(m.Analyses) != 1 {
			t.Fatalf("trace[%d]: %d analyses, want 1", i, len(m.Analyses))
		}
		a := m.Analyses[0]
		if a.Kind != obs.KindPipeline || a.Name != "p" || len(a.Stages) != 2 {
			t.Fatalf("trace[%d]: unexpected analysis %+v", i, a)
		}
		if a.BottleneckUtil <= 0 || a.WallNs <= 0 || m.Cost != float64(a.WallNs) {
			t.Fatalf("trace[%d]: analysis not populated from the run: %+v (cost %.0f)", i, a, m.Cost)
		}
	}
	// The recorded analysis must survive evaluator cache hits.
	if got := o.AnalysesFor(simStart()); len(got) != 1 {
		t.Fatalf("AnalysesFor(start) = %v", got)
	}
	if o.AnalysesFor(map[string]int{"never": 1}) != nil {
		t.Fatal("AnalysesFor must return nil for unseen assignments")
	}
}

// TestObservedFaultPenalized: faulted evaluations are penalized but
// recorded — a panicking objective and a run that drops items both
// cost +Inf and keep their ConfigMetrics entry marked Faulted, while
// healed retries keep the measured cost untouched.
func TestObservedFaultPenalized(t *testing.T) {
	c := obs.New()
	o := &Observed{Collector: c}

	// Panicking objective: the tuning loop must survive and record.
	crash := o.Wrap(func(a map[string]int) float64 { panic("worker died") })
	if cost := crash(map[string]int{"k": 1}); !math.IsInf(cost, 1) {
		t.Fatalf("panicking objective cost = %v, want +Inf", cost)
	}
	if len(o.Metrics) != 1 || !o.Metrics[0].Faulted {
		t.Fatalf("panic not recorded as faulted: %+v", o.Metrics)
	}

	// Lost work in the fault counters taints the measurement.
	lossy := o.Wrap(func(a map[string]int) float64 {
		c.Counter("parallelfor.p.wall_ns").Add(1000)
		c.Counter("parallelfor.p.faults.errors").Add(2)
		return 1000
	})
	if cost := lossy(map[string]int{"k": 2}); !math.IsInf(cost, 1) {
		t.Fatalf("lossy run cost = %v, want +Inf", cost)
	}
	if len(o.Metrics) != 2 || !o.Metrics[1].Faulted {
		t.Fatalf("lossy run not recorded as faulted: %+v", o.Metrics[len(o.Metrics)-1])
	}

	// Healed retries are not lost work: real cost, not penalized.
	healed := o.Wrap(func(a map[string]int) float64 {
		c.Counter("parallelfor.p.wall_ns").Add(1000)
		c.Counter("parallelfor.p.faults.retries").Add(5)
		return 1000
	})
	if cost := healed(map[string]int{"k": 3}); cost != 1000 {
		t.Fatalf("healed run cost = %v, want 1000", cost)
	}
	if m := o.Metrics[2]; m.Faulted || m.Analyses[0].FaultRetries != 5 {
		t.Fatalf("healed run mis-recorded: %+v", m)
	}
}

// TestDominatesAboveRules pins the pruning rule table.
func TestDominatesAboveRules(t *testing.T) {
	sim := &simPipeline{collector: obs.New(), serviceNs: [2]int64{100, 400}, items: 100}
	o := &Observed{Collector: sim.collector}
	obj := o.Wrap(sim.run)
	start := simStart()
	obj(start) // stage 1 saturated, stage 0 at 0.25

	cases := []struct {
		key  string
		want bool
	}{
		{"pipeline.p.stage.0.replication", true},      // non-bottleneck stage
		{"pipeline.p.stage.1.replication", false},     // the bottleneck itself
		{"pipeline.p.buffersize", true},               // compute-bound: buffers can't help
		{"pipeline.other.stage.0.replication", false}, // different pipeline, no data
		{"masterworker.p.workers", false},             // worker counts never pruned
		{"parallelfor.p.chunksize", false},
		{"pipeline.p.sequentialexecution", false}, // not a capacity parameter
	}
	for _, tc := range cases {
		if got := o.DominatesAbove(tc.key, start); got != tc.want {
			t.Errorf("DominatesAbove(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
	if o.DominatesAbove("pipeline.p.stage.0.replication", map[string]int{"unseen": 1}) {
		t.Error("unseen assignment must not dominate")
	}
	var nilObs *Observed
	if nilObs.AnalysesFor(start) != nil {
		t.Error("nil Observed must return nil analyses")
	}
}
