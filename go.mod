module patty

go 1.22
