package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/ptest"
	"patty/internal/store"
)

// newTestServer wires a server onto httptest with a tiny queue so
// overload is easy to provoke. Cleanups run LIFO: the leak check is
// registered first so it runs last, after the server and service have
// shut down and the shared client has dropped its keep-alive conns.
func newTestServer(t *testing.T, opts jobs.Options) (*server, *httptest.Server) {
	t.Helper()
	t.Cleanup(ptest.NoLeaks(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	if opts.Collector == nil {
		opts.Collector = obs.New()
	}
	svc := jobs.New(opts)
	srv := newServer(svc, "")
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return srv, ts
}

func TestServeSubmitStatusResult(t *testing.T) {
	_, ts := newTestServer(t, jobs.Options{Workers: 1})
	id, code := postJob(t, ts.URL, `{"kind":"tune","algo":"linear","budget":30}`)
	if code != http.StatusAccepted || id == "" {
		t.Fatalf("submit: HTTP %d id=%q", code, id)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.Status != jobs.StatusDone {
		t.Fatalf("job info: %+v", info)
	}
	rr, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res struct{ Result tuneOutcome }
	json.NewDecoder(rr.Body).Decode(&res)
	rr.Body.Close()
	if res.Result.Best == nil || res.Result.Evaluations == 0 {
		t.Fatalf("result: %+v", res.Result)
	}
	// Unknown id and bad kind map to 404 / 400.
	r404, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", r404.StatusCode)
	}
	if _, code := postJob(t, ts.URL, `{"kind":"bogus"}`); code != http.StatusBadRequest {
		t.Fatalf("bad kind: HTTP %d", code)
	}
}

func TestServeOverloadSheds503(t *testing.T) {
	_, ts := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 1})
	// A slow fuzz job occupies the worker, a second fills the queue.
	slow := `{"kind":"fuzz","seed":9,"n":500,"configs":1}`
	if _, code := postJob(t, ts.URL, slow); code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", code)
	}
	// Wait for the worker to pick up the first job so the queue empties.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var list []jobs.Info
		r, err := http.Get(ts.URL + "/jobs")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&list)
		r.Body.Close()
		if len(list) > 0 && list[len(list)-1].Status == jobs.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, code := postJob(t, ts.URL, slow); code != http.StatusAccepted {
		t.Fatalf("queued submit: HTTP %d", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
}

func TestServeCancelAndHealth(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Options{Workers: 1})
	id, _ := postJob(t, ts.URL, `{"kind":"fuzz","seed":3,"n":500,"configs":1}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	info, err := srv.svc.Wait(ctx, id)
	if err != nil || info.Status != jobs.StatusCanceled {
		t.Fatalf("canceled job: %+v err=%v", info, err)
	}

	for _, ep := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + ep)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("%s: %v %v", ep, err, r)
		}
		r.Body.Close()
	}
	// Draining flips readyz to 503.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := srv.svc.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: HTTP %d, want 503", r.StatusCode)
	}
	// Submissions during drain shed with 503 too.
	if _, code := postJob(t, ts.URL, `{"kind":"study"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("drain submit: HTTP %d, want 503", code)
	}
}

// TestServeQuota429AndTenantFilter covers the tenant intake: a tenant
// over its token-bucket quota gets 429 + Retry-After (not the 503 the
// overload shed uses), other tenants are unaffected, and /jobs?tenant=
// filters the ledger.
func TestServeQuota429AndTenantFilter(t *testing.T) {
	_, ts := newTestServer(t, jobs.Options{
		Workers: 1, TenantRate: 0.001, TenantBurst: 1,
	})
	id, code := postJobTenant(t, ts.URL, "greedy", `{"kind":"bench","sleep_ms":1}`)
	if code != http.StatusAccepted || id == "" {
		t.Fatalf("first submit: HTTP %d id=%q", code, id)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"kind":"bench","sleep_ms":1}`))
	req.Header.Set("X-Tenant", "greedy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// Another tenant has its own bucket.
	if _, code := postJobTenant(t, ts.URL, "modest", `{"kind":"bench","sleep_ms":1}`); code != http.StatusAccepted {
		t.Fatalf("other tenant: HTTP %d", code)
	}
	// A tenant id the header charset rejects is a 400, not a shed.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"kind":"bench","sleep_ms":1}`))
	req.Header.Set("X-Tenant", "no spaces allowed")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant id: HTTP %d, want 400", resp.StatusCode)
	}

	var list []jobs.Info
	r, err := http.Get(ts.URL + "/jobs?tenant=greedy")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&list)
	r.Body.Close()
	if len(list) != 1 || list[0].ID != id || list[0].Tenant != "greedy" {
		t.Fatalf("?tenant=greedy: %+v", list)
	}
	// A tenant with no jobs filters to an empty JSON array, not null.
	r, err = http.Get(ts.URL + "/jobs?tenant=nobody")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 16)
	n, _ := r.Body.Read(body)
	r.Body.Close()
	if got := strings.TrimSpace(string(body[:n])); got != "[]" {
		t.Fatalf("empty filter body = %q, want []", got)
	}
}

// TestServeStoreRecoveryInProcess is the unit-level half of the chaos
// gate: a journaled service is torn down (no crash needed — Close is
// just the easy way to stop writing), its store reopened, and the
// recovered service must list the finished job with its tenant and
// result while new submissions continue above the old seq ceiling.
func TestServeStoreRecoveryInProcess(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := jobs.New(jobs.Options{Workers: 1, Collector: obs.New(), Journal: st})
	srv := newServer(svc, "")
	ts := httptest.NewServer(srv.mux())
	id, code := postJobTenant(t, ts.URL, "acme", `{"kind":"bench","sleep_ms":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	r, err := http.Get(ts.URL + "/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	ts.Close()
	svc.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2 := jobs.New(jobs.Options{Workers: 1, Collector: obs.New(), Journal: st2})
	defer svc2.Close()
	srv2 := newServer(svc2, "")
	restored, resumed := recoverJobs(svc2, srv2, st2)
	if restored != 1 || resumed != 0 {
		t.Fatalf("recovered (%d, %d), want (1, 0)", restored, resumed)
	}
	infos := svc2.Jobs()
	if len(infos) != 1 || infos[0].ID != id || infos[0].Status != jobs.StatusDone ||
		infos[0].Tenant != "acme" {
		t.Fatalf("recovered ledger: %+v", infos)
	}
	ts2 := httptest.NewServer(srv2.mux())
	defer ts2.Close()
	id2, code := postJobTenant(t, ts2.URL, "acme", `{"kind":"bench","sleep_ms":1}`)
	if code != http.StatusAccepted || id2 == id {
		t.Fatalf("post-recovery submit: HTTP %d id=%q (old id %q)", code, id2, id)
	}
	r, err = http.Get(ts2.URL + "/jobs/" + id2 + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
}

func TestServeStatuszAndMetricz(t *testing.T) {
	c := obs.New()
	_, ts := newTestServer(t, jobs.Options{Workers: 1, Collector: c})
	old := metrics
	metrics = c
	defer func() { metrics = old }()

	id, _ := postJob(t, ts.URL, `{"kind":"study","seed":4713}`)
	r, err := http.Get(ts.URL + "/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	sr, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := sr.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	sr.Body.Close()
	if !strings.Contains(sb.String(), "job service") || !strings.Contains(sb.String(), "submitted 1") {
		t.Fatalf("statusz:\n%s", sb.String())
	}
	mr, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	json.NewDecoder(mr.Body).Decode(&snap)
	mr.Body.Close()
	if snap.Counters["jobs.submitted"] != 1 {
		t.Fatalf("metricz counters: %v", snap.Counters)
	}
}
