package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/tuning"
)

// postJobTenant submits a job body under a tenant id.
func postJobTenant(t *testing.T, base, tenant, body string) (string, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.ID, resp.StatusCode
}

// TestServeTrafficChaosRecovery is the `make serve-chaos` gate: a
// durable server (-store-dir) under concurrent multi-tenant bench
// traffic plus one checkpointed tune search is SIGKILLed mid-traffic.
// A restarted server on the same directories must recover every
// acknowledged job exactly once — finished jobs restore with their
// journaled results and never re-run, the interrupted tune job resumes
// from its snapshot to the same best as an uninterrupted run, and the
// tenant identity and accepted order of the ledger survive.
func TestServeTrafficChaosRecovery(t *testing.T) {
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	storeDir := t.TempDir()
	ckptDir := t.TempDir()
	spec := tuneSpec{Algo: "tabu", Budget: 120, FaultRate: 10, FaultSeed: 3}
	ref, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	srv1, base1 := startServe(t, "-workers", "2",
		"-checkpoint-dir", ckptDir, "-store-dir", storeDir)
	tuneID, code := postJob(t, base1,
		`{"kind":"tune","algo":"tabu","budget":120,"fault_rate":10,"fault_seed":3,"eval_delay_ms":30}`)
	if code != http.StatusAccepted {
		t.Fatalf("tune submit: HTTP %d", code)
	}

	// Concurrent bench traffic from two tenants. Only 202-acknowledged
	// ids are recorded: an acknowledgement means the acceptance hit the
	// WAL (fsynced) before the response was written, so each of these
	// must survive the kill.
	acked := make(map[string]string) // id -> tenant
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "alpha", "beta", "beta"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, err := http.NewRequest(http.MethodPost, base1+"/jobs",
					strings.NewReader(`{"kind":"bench","sleep_ms":3}`))
				if err != nil {
					return
				}
				req.Header.Set("X-Tenant", tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // server killed mid-request: not acknowledged
				}
				var out struct {
					ID string `json:"id"`
				}
				json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode == http.StatusAccepted && out.ID != "" {
					mu.Lock()
					acked[out.ID] = tenant
					mu.Unlock()
				}
			}
		}(tenant)
	}

	// Kill only once the tune search has journaled progress AND the
	// bench traffic has acknowledged work in flight.
	ckpt := filepath.Join(ckptDir, "tune-tabu-b120-c8.ckpt")
	waitForEvals(t, ckpt, 3, 30*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d bench jobs acknowledged before kill", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv1.Process.Kill(); err != nil { // SIGKILL mid-traffic
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	srv1.Wait()

	// Restart on the same store; recovery runs before the banner.
	srv2, base2 := startServe(t, "-workers", "2",
		"-checkpoint-dir", ckptDir, "-store-dir", storeDir,
		"-drain-timeout", "30s")

	// Every acknowledged job reaches exactly one terminal state under
	// its original identity. Bench jobs cannot fail, so the terminal
	// state must be done — whether restored (finished before the kill)
	// or resubmitted and run now.
	for id, tenant := range acked {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=1", base2, id))
		if err != nil {
			t.Fatal(err)
		}
		var info jobs.Info
		json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if info.ID != id || info.Status != jobs.StatusDone {
			t.Fatalf("acknowledged job %s (tenant %s) after restart: %+v", id, tenant, info)
		}
		if info.Tenant != tenant {
			t.Fatalf("job %s lost its tenant: %q, want %q", id, info.Tenant, tenant)
		}
	}

	// The ledger lists each id once, in accepted-seq order, and the
	// ?tenant= filter carves it by tenant.
	var all []jobs.Info
	r, err := http.Get(base2 + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&all)
	r.Body.Close()
	seen := make(map[string]bool)
	for i, info := range all {
		if seen[info.ID] {
			t.Fatalf("job %s listed twice: exactly-once violated", info.ID)
		}
		seen[info.ID] = true
		if i > 0 && all[i].Seq <= all[i-1].Seq {
			t.Fatalf("ledger out of accepted order at %d: %+v", i, all)
		}
	}
	wantAlpha := 0
	for _, tenant := range acked {
		if tenant == "alpha" {
			wantAlpha++
		}
	}
	var alphas []jobs.Info
	r, err = http.Get(base2 + "/jobs?tenant=alpha")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&alphas)
	r.Body.Close()
	if len(alphas) < wantAlpha {
		t.Fatalf("?tenant=alpha lists %d jobs, acknowledged %d", len(alphas), wantAlpha)
	}
	for _, info := range alphas {
		if info.Tenant != "alpha" {
			t.Fatalf("?tenant=alpha leaked %+v", info)
		}
	}

	// The interrupted tune job resumes from its snapshot — same id,
	// same best as the uninterrupted reference, no re-measured prefix.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=1", base2, tuneID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rresp, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", base2, tuneID))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Info   struct{ Status string }
		Result tuneOutcome
	}
	if err := json.NewDecoder(rresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if got.Info.Status != "done" {
		t.Fatalf("resumed tune job status %q", got.Info.Status)
	}
	if got.Result.Resumed < 3 {
		t.Fatalf("resumed tune replayed %d evals, want >= 3", got.Result.Resumed)
	}
	if tuning.AssignKey(got.Result.Best) != tuning.AssignKey(ref.Best) || got.Result.Cost != ref.Cost {
		t.Fatalf("resumed best %v (%.0f) != uninterrupted best %v (%.0f)",
			got.Result.Best, got.Result.Cost, ref.Best, ref.Cost)
	}
	if got.Result.Explored < ref.Evaluations {
		t.Fatalf("resumed tune explored %d configs, uninterrupted evaluated %d",
			got.Result.Explored, ref.Evaluations)
	}

	// The recovery split is observable: finished work restored, the
	// tune job (at least) resubmitted — and restored jobs never ran
	// again, or the restored counter could not cover them.
	mresp, err := http.Get(base2 + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if snap.Counters["jobs.restored"] == 0 {
		t.Fatal("no jobs restored: nothing finished before the kill?")
	}
	if snap.Counters["jobs.resubmitted"] == 0 {
		t.Fatal("no jobs resubmitted: the interrupted tune job must be")
	}

	// SIGTERM drains the restarted server cleanly.
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Wait(); err != nil {
		t.Fatalf("SIGTERM drain must exit 0, got %v", err)
	}
}
