package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"patty/internal/corpus"
	"patty/internal/difftest"
	"patty/internal/interp"
	"patty/internal/seed"
)

// interpEnginePoint is one engine's interpreter-level measurement: a
// fixed number of full corpus passes, machines and bytecode prepared
// outside the timed region.
type interpEnginePoint struct {
	WallMs         float64 `json:"wall_ms"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
}

// interpBench is the BENCH_interp.json baseline: the bytecode VM
// against the tree-walking reference on the benchmark corpus, plus the
// end-to-end effect on a differential-fuzzing sweep. The interpreter
// ratio is the gate; the fuzz ratio is informational because interp
// time is only part of a Check (detect, transform and the parallel
// legs are engine-independent, and the in-Check engine leg runs both
// engines by design).
type interpBench struct {
	Programs    int               `json:"programs"`
	Passes      int               `json:"passes"`
	Tree        interpEnginePoint `json:"tree"`
	VM          interpEnginePoint `json:"vm"`
	Speedup     float64           `json:"speedup"`
	MinSpeedup  float64           `json:"min_speedup"`
	FuzzN       int               `json:"fuzz_n"`
	FuzzTreeMs  float64           `json:"fuzz_tree_wall_ms"`
	FuzzVMMs    float64           `json:"fuzz_vm_wall_ms"`
	FuzzSpeedup float64           `json:"fuzz_speedup"`
}

// interpCorpusPass measures `passes` full corpus passes on one engine.
// The per-program Machines (and, for the VM, the compiled bytecode) are
// built before the clock starts, so the measurement isolates pure
// interpretation time — the quantity the performance model's dynamic
// enrichment pays per traced run.
func interpCorpusPass(ctx context.Context, eng interp.Engine, passes int) (interpEnginePoint, error) {
	type ready struct {
		p *corpus.Program
		m *interp.Machine
	}
	var progs []ready
	for _, p := range corpus.All() {
		sp, err := p.Load()
		if err != nil {
			return interpEnginePoint{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		m := interp.NewMachine(sp)
		m.SetEngine(eng)
		// Warm-up run: compiles the bytecode (VM) and faults in the
		// source program either way.
		if _, _, err := m.Run(p.Entry, p.Args(m), interp.Options{}); err != nil {
			return interpEnginePoint{}, fmt.Errorf("%s on %s: %w", p.Name, eng, err)
		}
		progs = append(progs, ready{p, m})
	}
	t0 := time.Now()
	for i := 0; i < passes; i++ {
		if err := ctx.Err(); err != nil {
			return interpEnginePoint{}, err
		}
		for _, r := range progs {
			if _, _, err := r.m.Run(r.p.Entry, r.p.Args(r.m), interp.Options{}); err != nil {
				return interpEnginePoint{}, fmt.Errorf("%s on %s: %w", r.p.Name, eng, err)
			}
		}
	}
	wall := time.Since(t0)
	pt := interpEnginePoint{WallMs: float64(wall.Microseconds()) / 1e3}
	if wall > 0 {
		pt.ProgramsPerSec = float64(passes*len(progs)) / wall.Seconds()
	}
	return pt, nil
}

// interpFuzzSweep times a fixed differential sweep with DefaultEngine
// pinned to eng — the same machines `patty fuzz` creates.
func interpFuzzSweep(ctx context.Context, eng interp.Engine, n int) (float64, error) {
	prev := interp.DefaultEngine
	interp.DefaultEngine = eng
	defer func() { interp.DefaultEngine = prev }()
	opt := difftest.Options{Configs: 1}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		p := difftest.Generate(seed.Mix(seed.Default, int64(i)), difftest.GenOptions{})
		if res := difftest.Check(p, opt); res.Div != nil {
			return 0, fmt.Errorf("seed %d diverged during benchmark: %s", p.Seed, res.Div)
		}
	}
	return float64(time.Since(t0).Microseconds()) / 1e3, nil
}

// cmdInterpbench measures and gates the bytecode VM: corpus throughput
// on both engines must show at least -min-speedup, and the JSON
// baseline lands in -o (checked in as BENCH_interp.json).
func cmdInterpbench(ctx context.Context, args []string) error {
	fs := newFlagSet("interpbench")
	passes := fs.Int("passes", 20, "timed full-corpus passes per engine")
	fuzzN := fs.Int("fuzz-n", 25, "programs in the end-to-end differential sweep (0: skip)")
	minSpeedup := fs.Float64("min-speedup", 10, "fail unless vm/tree interpreter speedup reaches this")
	outPath := fs.String("o", "", "also write the JSON baseline to this file")
	fs.Parse(args)

	bench := interpBench{
		Programs:   len(corpus.All()),
		Passes:     *passes,
		MinSpeedup: *minSpeedup,
		FuzzN:      *fuzzN,
	}

	tree, err := interpCorpusPass(ctx, interp.EngineTree, *passes)
	if err != nil {
		return err
	}
	vm, err := interpCorpusPass(ctx, interp.EngineVM, *passes)
	if err != nil {
		return err
	}
	bench.Tree, bench.VM = tree, vm
	if vm.WallMs > 0 {
		bench.Speedup = tree.WallMs / vm.WallMs
	}
	fmt.Printf("interp: %d corpus programs x %d passes\n", bench.Programs, bench.Passes)
	fmt.Printf("  tree: %8.1f ms  (%8.1f programs/s)\n", tree.WallMs, tree.ProgramsPerSec)
	fmt.Printf("  vm:   %8.1f ms  (%8.1f programs/s)\n", vm.WallMs, vm.ProgramsPerSec)
	fmt.Printf("  speedup: %.1fx (gate: >= %.1fx)\n", bench.Speedup, bench.MinSpeedup)

	if *fuzzN > 0 {
		ft, err := interpFuzzSweep(ctx, interp.EngineTree, *fuzzN)
		if err != nil {
			return err
		}
		fv, err := interpFuzzSweep(ctx, interp.EngineVM, *fuzzN)
		if err != nil {
			return err
		}
		bench.FuzzTreeMs, bench.FuzzVMMs = ft, fv
		if fv > 0 {
			bench.FuzzSpeedup = ft / fv
		}
		fmt.Printf("fuzz sweep (%d programs end-to-end): tree %.0f ms, vm %.0f ms (%.2fx)\n",
			*fuzzN, ft, fv, bench.FuzzSpeedup)
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if bench.Speedup < bench.MinSpeedup {
		return fmt.Errorf("vm speedup %.1fx is below the %.1fx gate", bench.Speedup, bench.MinSpeedup)
	}
	return nil
}
