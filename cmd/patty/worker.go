package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"patty/internal/evalcache"
	"patty/internal/fleet"
	"patty/internal/jobs"
	"patty/internal/netchaos"
	"patty/internal/tuning"
)

// workerObjective reconstructs the shard objective from the wire spec —
// the worker half of the contract whose coordinator half is
// tuneSpec.evalSpec(). Sharing evalSpec.workload is what makes a cost
// measured here interchangeable with one measured in the coordinator's
// process.
func workerObjective(spec json.RawMessage) (tuning.Objective, error) {
	var es evalSpec
	if len(spec) > 0 {
		if err := json.Unmarshal(spec, &es); err != nil {
			return nil, fmt.Errorf("bad eval spec: %w", err)
		}
	}
	_, _, obj := es.workload(context.Background())
	return obj, nil
}

// cmdWorker runs one fleet worker: a hardened HTTP intake that admits
// POST /shards through the same supervised jobs.Service `patty serve`
// uses, evaluates each leased shard, and (with -cache-dir) journals
// every measurement into the shared content-addressed store so a
// restarted worker answers repeated configurations instead of
// re-measuring them.
// It drains like serve: the first SIGINT/SIGTERM stops admission and
// lets in-flight shards finish, a second one hard-exits.
func cmdWorker(ctx context.Context, args []string) error {
	fs := newFlagSet("worker")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 2, "evaluation-pool size")
	queue := fs.Int("queue", 16, "admission-queue bound; a full queue sheds shards with 503")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "hard deadline for the shutdown drain")
	cacheDir := fs.String("cache-dir", "", "persistent content-addressed evaluation store: measured configs answer from it across searches and restarts")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "evaluation-store size bound in bytes (0: 64 MiB); oldest segments evicted first")
	chaosFlag := fs.String("chaos", "", `wire-fault plan JSON (or "gate"): wrap the intake in a deterministic server-side fault injector`)
	byzRate := fs.Int("byzantine-rate", 0, "percent of evaluations reported with corrupted costs (byzantine drills; 100 = lie on every config)")
	byzSeed := fs.Int64("byzantine-seed", 1, "seed selecting which evaluations lie")
	fs.Parse(args)

	var cache *evalcache.Store
	if *cacheDir != "" {
		var err error
		cache, err = evalcache.Open(*cacheDir, evalcache.Options{
			MaxBytes: *cacheMaxBytes, Collector: metrics,
		})
		if err != nil {
			return err
		}
		defer cache.Close()
		if rec := cache.Recovery(); rec.TornBytes > 0 || len(rec.Quarantined) > 0 {
			fmt.Printf("patty worker: cache repaired (%d entr(y/ies) recovered, %d torn byte(s) dropped, %d segment(s) quarantined)\n",
				rec.Entries, rec.TornBytes, len(rec.Quarantined))
		}
	}
	hook := workerObjective
	if *byzRate > 0 {
		// A drill liar: answer fast and well-formed, but corrupt a
		// deterministic fraction of costs. The coordinator's cross-check
		// must quarantine this worker and repair its contributions.
		rate, bseed := *byzRate, *byzSeed
		hook = func(spec json.RawMessage) (tuning.Objective, error) {
			obj, err := workerObjective(spec)
			if err != nil {
				return nil, err
			}
			return func(a map[string]int) float64 {
				cost := obj(a)
				if faultsConfig(a, rate, bseed) {
					return cost*3 + 17
				}
				return cost
			}, nil
		}
	}
	svc := jobs.New(jobs.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		Collector:  metrics,
	})
	wk := fleet.NewWorker(svc, hook, cache, metrics)

	var handler http.Handler = wk.Mux()
	if ps, err := parseChaosPlan(*chaosFlag); err != nil {
		return err
	} else if ps != nil {
		handler = netchaos.New(ps.Plan()).Instrument(metrics).Middleware(handler)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Parseable by harnesses: the one line on stdout before serving.
	fmt.Printf("patty worker: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Printf("patty worker: drain deadline hit, canceled remaining shards\n")
	} else {
		fmt.Printf("patty worker: drained cleanly\n")
	}
	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	hs.Shutdown(sctx)
	return nil
}
