package main

import (
	"fmt"
	"strings"

	"patty/internal/evalcache"
	"patty/internal/obs"
	"patty/internal/report"
)

// cmdCache is the operator's window into a content-addressed
// evaluation store (-cache-dir of tune/worker/serve):
//
//	stats   open the store (running its recovery) and print what it holds
//	verify  read-only integrity scan; non-zero exit on any damage
//	gc      compact: rewrite live entries, drop superseded and
//	        quarantined data, then print the reclaimed bytes
//
// verify never mutates the directory, so it is safe against a store a
// live server has open. stats and gc take ownership of the directory
// and must not race a running process.
func cmdCache(args []string) error {
	fs := newFlagSet("cache")
	dir := fs.String("dir", "", "evaluation-store directory (required)")
	maxBytes := fs.Int64("max-bytes", 0, "size bound applied when opening (0: 64 MiB)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	op := "stats"
	if fs.NArg() > 0 {
		op = fs.Arg(0)
	}
	switch op {
	case "stats":
		s, err := evalcache.Open(*dir, evalcache.Options{MaxBytes: *maxBytes, Collector: metrics})
		if err != nil {
			return err
		}
		defer s.Close()
		rec := s.Recovery()
		if rec.TornBytes > 0 || len(rec.Quarantined) > 0 {
			fmt.Printf("recovery: %d torn byte(s) dropped, %d segment(s) quarantined: %s\n",
				rec.TornBytes, len(rec.Quarantined), strings.Join(rec.Quarantined, ", "))
		}
		if ch, ok := obs.AnalyzeCache(metrics.Snapshot()); ok {
			fmt.Print(report.CacheTable(ch))
		}
		st := s.Stats()
		fmt.Printf("store %s: %d entr(y/ies), %d byte(s) in %d segment(s)\n",
			*dir, st.Entries, st.Bytes, st.Segments)
		return nil
	case "verify":
		rep, err := evalcache.VerifyDir(*dir)
		if err != nil {
			return err
		}
		fmt.Printf("verified %d segment(s): %d entr(y/ies), %d byte(s)\n",
			rep.Segments, rep.Entries, rep.Bytes)
		for _, p := range rep.Problems {
			fmt.Println("  " + p)
		}
		if len(rep.Problems) > 0 {
			return fmt.Errorf("%d problem(s) found", len(rep.Problems))
		}
		return nil
	case "gc":
		s, err := evalcache.Open(*dir, evalcache.Options{MaxBytes: *maxBytes, Collector: metrics})
		if err != nil {
			return err
		}
		defer s.Close()
		before := s.Stats()
		if err := s.Compact(); err != nil {
			return err
		}
		after := s.Stats()
		fmt.Printf("compacted %s: %d -> %d byte(s) (%d entr(y/ies) live)\n",
			*dir, before.Bytes, after.Bytes, after.Entries)
		return nil
	default:
		return fmt.Errorf("unknown cache operation %q (want stats, verify or gc)", op)
	}
}
