package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"patty/internal/difftest"
	"patty/internal/evalcache"
	"patty/internal/fleet"
	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/report"
	"patty/internal/store"
	"patty/internal/study"
)

// jobRequest is the POST /jobs body. Kind selects the workload; the
// tune fields are embedded flat, fuzz and study add theirs beside it.
// The same JSON is journaled verbatim into the -store-dir WAL, so a
// restarted server rebuilds the identical Runner from it.
type jobRequest struct {
	Kind string `json:"kind"` // tune | fuzz | study | bench
	// Tenant attributes the job for quota and fair-share purposes; the
	// X-Tenant header takes precedence over this field.
	Tenant string `json:"tenant,omitempty"`
	// Sources, when present, names the program this job is about
	// (filename -> Go source). With -cache-dir its canonical hash —
	// invariant under formatting, comments, and local renames — becomes
	// the job's content address, so a reformatted resubmission of the
	// same program, by any tenant, before or after a restart, answers
	// from the evaluation store without re-running.
	Sources map[string]string `json:"sources,omitempty"`
	tuneSpec
	// Fuzz fields.
	Seed    int64 `json:"seed,omitempty"`
	N       int   `json:"n,omitempty"`
	Configs int   `json:"configs,omitempty"`
	// Study fields.
	Measured bool `json:"measured,omitempty"`
	// Bench fields: a calibrated no-op job for load harnesses.
	SleepMs int64 `json:"sleep_ms,omitempty"`
}

// fuzzJobResult is the JSON result of a serve fuzz job.
type fuzzJobResult struct {
	Programs    int            `json:"programs"`
	Kinds       map[string]int `json:"kinds"`
	Divergences int            `json:"divergences"`
	Seeds       []int64        `json:"divergent_seeds,omitempty"`
}

// server routes HTTP onto a jobs.Service.
type server struct {
	svc     *jobs.Service
	ckptDir string
	// cache, when non-nil, is the shared content-addressed evaluation
	// store (-cache-dir): whole deterministic jobs and individual tune
	// evaluations are memoized in it, across tenants and restarts.
	cache *evalcache.Store
	// intake is the admission breaker: shed submissions trip it and its
	// remaining cooldown becomes the 503 Retry-After value, so the
	// advertised backoff grows while an overload persists.
	intake *jobs.Breaker
}

// newServer wires the HTTP surface onto a job service.
func newServer(svc *jobs.Service, ckptDir string) *server {
	return &server{svc: svc, ckptDir: ckptDir, intake: jobs.NewBreaker(3, time.Second)}
}

// jobCacheKey derives the content address of a whole job, or ok=false
// when the job must not be memoized. Deterministic kinds qualify; bench
// (a calibrated sleep measured for its latency) never does. The program
// slot carries the canonical hash of the submitted sources when present
// — that is what makes a reformatted or alpha-renamed resubmission hit
// — and the config slot hashes the normalized spec, so any field that
// changes the answer (budget, algo, seeds, fleet shape) changes the
// address. Tenant is deliberately absent: the answer to a pure job is
// tenant-independent, which is exactly why the store may be shared.
func jobCacheKey(req jobRequest) (evalcache.Key, bool) {
	var seed int64
	switch req.Kind {
	case "tune":
		seed = req.FaultSeed
	case "fuzz", "study":
		seed = req.Seed
	default:
		return evalcache.Key{}, false
	}
	prog := "job:" + req.Kind
	if len(req.Sources) > 0 {
		h, err := evalcache.ProgramHash(req.Sources)
		if err != nil {
			// Unparseable sources cannot be content-addressed; run the
			// job uncached rather than guessing an identity.
			return evalcache.Key{}, false
		}
		prog = h
	}
	norm := req
	norm.Tenant = ""   // attribution, not identity
	norm.Sources = nil // carried by the program slot
	cfg, err := evalcache.SpecHash("serve-job/v1", norm)
	if err != nil {
		return evalcache.Key{}, false
	}
	return evalcache.Key{Program: prog, Config: cfg, Seed: seed}, true
}

// memoize wraps a job runner in the store: an identical job already
// answered — by anyone, including before the last restart — returns its
// recorded result without running; a fresh run records its marshaled
// result on the way out. Failed or interrupted runs are never recorded.
func (s *server) memoize(req jobRequest, run jobs.Runner) jobs.Runner {
	key, ok := jobCacheKey(req)
	if !ok {
		return run
	}
	tenant := req.Tenant
	return func(ctx context.Context) (any, error) {
		if e, hit := s.cache.Get(key, tenant); hit && len(e.Payload) > 0 {
			return json.RawMessage(e.Payload), nil
		}
		res, err := run(ctx)
		if err != nil {
			return res, err
		}
		if payload, merr := json.Marshal(res); merr == nil {
			s.cache.Put(evalcache.Entry{
				Program: key.Program, Config: key.Config, Seed: key.Seed,
				Payload: payload, Tenant: tenant,
			})
		}
		return res, nil
	}
}

// runnerFor translates a validated request into the job's Runner and
// the resume-checkpoint path it will use (journaled as a
// checkpoint-ref record). Checkpoint paths default into
// -checkpoint-dir, derived deterministically from the job parameters,
// so a recovered job after a crash re-attaches to the same snapshot —
// the tuner resumes its search instead of restarting it. With a store
// attached, deterministic jobs are additionally memoized whole (see
// memoize); recovery goes through this same path, so a resubmitted
// unfinished job whose twin already finished answers from the store.
func (s *server) runnerFor(req jobRequest) (jobs.Runner, string, error) {
	run, ckpt, err := s.buildRunner(req)
	if err != nil || s.cache == nil {
		return run, ckpt, err
	}
	return s.memoize(req, run), ckpt, nil
}

// buildRunner is runnerFor without the memoization layer.
func (s *server) buildRunner(req jobRequest) (jobs.Runner, string, error) {
	switch req.Kind {
	case "tune":
		spec := req.tuneSpec.withDefaults()
		if spec.Checkpoint == "" && s.ckptDir != "" {
			spec.Checkpoint = filepath.Join(s.ckptDir,
				fmt.Sprintf("tune-%s-b%d-c%d.ckpt", spec.Algo, spec.Budget, spec.Cores))
		}
		if s.cache != nil {
			// Even when the whole job misses (say, a different budget),
			// the search itself shares every measured configuration
			// through the same store.
			spec.cache = s.cache
			spec.cacheTenant = req.Tenant
		}
		if len(spec.Workers) > 0 {
			// A workers field shards the search across a fleet; the
			// merged result is identical to the local run's.
			return func(ctx context.Context) (any, error) {
				return runFleetTune(ctx, spec)
			}, spec.Checkpoint, nil
		}
		return func(ctx context.Context) (any, error) {
			return runTune(ctx, spec)
		}, spec.Checkpoint, nil
	case "fuzz":
		seed, n := req.Seed, req.N
		if n <= 0 {
			n = 50
		}
		opt := difftest.Options{Configs: req.Configs}
		if opt.Configs <= 0 {
			opt.Configs = 2
		}
		ckpt := ""
		if s.ckptDir != "" {
			ckpt = filepath.Join(s.ckptDir, fmt.Sprintf("fuzz-s%d-n%d.ckpt", seed, n))
		}
		return func(ctx context.Context) (any, error) {
			var sum *difftest.Summary
			var err error
			if ckpt != "" {
				var b *difftest.Batch
				b, _, err = difftest.NewBatch(ckpt, seed, n)
				if err != nil {
					return nil, err
				}
				sum, err = b.Run(ctx, opt, nil)
			} else {
				sum, err = difftest.RunCtx(ctx, seed, n, opt, nil)
			}
			if err != nil {
				return nil, err
			}
			res := &fuzzJobResult{Programs: sum.Programs, Kinds: sum.Kinds, Divergences: len(sum.Divergences)}
			for _, d := range sum.Divergences {
				res.Seeds = append(res.Seeds, d.Div.Seed)
			}
			return res, nil
		}, ckpt, nil
	case "study":
		seed, measured := req.Seed, req.Measured
		if seed == 0 {
			seed = study.DefaultSeed
		}
		ckpt := ""
		if measured && s.ckptDir != "" {
			ckpt = filepath.Join(s.ckptDir, "study-outcome.ckpt")
		}
		return func(ctx context.Context) (any, error) {
			outcome := study.PaperOutcome()
			if measured {
				var err error
				if ckpt != "" {
					outcome, _, err = study.MeasuredOutcomeCached(ckpt)
				} else {
					outcome, err = study.MeasuredOutcome()
				}
				if err != nil {
					return nil, err
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return study.Run(seed, outcome), nil
		}, ckpt, nil
	case "bench":
		// A calibrated sleep job: the servebench load harness measures
		// queueing and fairness with it, without dragging tuner cost
		// variance into the latency numbers. Honors cancellation.
		sleep := time.Duration(req.SleepMs) * time.Millisecond
		if sleep < 0 {
			return nil, "", fmt.Errorf("sleep_ms must be >= 0")
		}
		return func(ctx context.Context) (any, error) {
			if sleep > 0 {
				t := time.NewTimer(sleep)
				defer t.Stop()
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-t.C:
				}
			}
			return map[string]int64{"slept_ms": sleep.Milliseconds()}, nil
		}, "", nil
	default:
		return nil, "", fmt.Errorf("unknown job kind %q (want tune, fuzz, study or bench)", req.Kind)
	}
}

// maxTenantLen bounds tenant ids; longer (or malformed) ones are 400s.
const maxTenantLen = 64

// tenantOf resolves the submission's tenant: the X-Tenant header wins
// over the body field; absent both, jobs.DefaultTenant applies (via
// the service). The id must be short and [A-Za-z0-9._-] so arbitrary
// input cannot forge metric keys or bloat the store.
func tenantOf(r *http.Request, req jobRequest) (string, error) {
	id := r.Header.Get("X-Tenant")
	if id == "" {
		id = req.Tenant
	}
	if id == "" {
		return "", nil
	}
	if len(id) > maxTenantLen {
		return "", fmt.Errorf("tenant id longer than %d bytes", maxTenantLen)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return "", fmt.Errorf("tenant id %q: only [A-Za-z0-9._-] allowed", id)
		}
	}
	return id, nil
}

// writeJSON writes v with status code (shared with the fleet intakes).
func writeJSON(w http.ResponseWriter, code int, v any) {
	fleet.WriteJSON(w, code, v)
}

// jsonError is the error envelope of every non-2xx JSON answer.
func jsonError(w http.ResponseWriter, code int, err error) {
	fleet.WriteError(w, code, err)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if !fleet.DecodeJSON(w, r, fleet.MaxBodyBytes, &req) {
		return
	}
	tenant, err := tenantOf(r, req)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	req.Tenant = tenant
	run, ckpt, err := s.runnerFor(req)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	// The canonical body — not the raw wire bytes — is journaled, so
	// recovery decodes exactly what admission validated.
	spec, err := json.Marshal(req)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	id, err := s.svc.SubmitJob(jobs.Submission{
		Tenant:     tenant,
		Kind:       req.Kind,
		Spec:       spec,
		Checkpoint: ckpt,
		Run:        run,
	})
	var qe *jobs.QuotaError
	switch {
	case errors.As(err, &qe):
		// Over-quota is the tenant's problem, not the service's: answer
		// 429 with the (jittered) bucket-refill estimate and leave the
		// intake breaker alone — its cooldown tracks overload, and one
		// noisy tenant must not grow every caller's advertised backoff.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(qe.RetryAfter)))
		jsonError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrOverloaded), errors.Is(err, jobs.ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(jobs.ShedRetryAfter(s.intake)))
		jsonError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.intake.Record(jobs.IntakeKey, false)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// retryAfterSecs renders a duration as whole Retry-After seconds,
// floored at 1.
func retryAfterSecs(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("wait") != "" {
		info, err := s.svc.Wait(r.Context(), id)
		if err != nil {
			s.jobError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	info, err := s.svc.Status(id)
	if err != nil {
		s.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, info, err := s.svc.Result(r.PathValue("id"))
	if err != nil {
		s.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"info": info, "result": res})
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.svc.Cancel(id); err != nil {
		s.jobError(w, err)
		return
	}
	info, err := s.svc.Status(id)
	if err != nil {
		s.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// jobError maps service errors to status codes.
func (s *server) jobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		jsonError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrNotFinished):
		jsonError(w, http.StatusConflict, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		jsonError(w, http.StatusRequestTimeout, err)
	default:
		jsonError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		list := s.svc.Jobs() // accepted-seq order: stable across restarts
		if tenant := r.URL.Query().Get("tenant"); tenant != "" {
			filtered := list[:0]
			for _, info := range list {
				if info.Tenant == tenant {
					filtered = append(filtered, info)
				}
			}
			list = filtered
		}
		if list == nil {
			list = []jobs.Info{}
		}
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.svc.Draining() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		snap := metrics.Snapshot()
		h, _ := obs.AnalyzeService(snap)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.ServiceTable(h))
		fmt.Fprint(w, report.TenantTable(obs.AnalyzeTenants(snap)))
		if fh, ok := obs.AnalyzeFleet(snap); ok {
			fmt.Fprint(w, report.FleetTable(fh))
		}
		if ch, ok := obs.AnalyzeCache(snap); ok {
			fmt.Fprint(w, report.CacheTable(ch))
		}
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metrics.Snapshot())
	})
	return mux
}

// recoverJobs replays a durable store into a fresh service: terminal
// jobs restore with their results (never to run again), acknowledged
// but unfinished jobs re-enqueue under their original identity — tune
// jobs re-attach to their resume checkpoints via the deterministic
// paths runnerFor derives. Returns (restored, resumed) counts.
func recoverJobs(svc *jobs.Service, srv *server, st *store.Store) (int, int) {
	svc.SetNextSeq(st.MaxSeq())
	restored, resumed := 0, 0
	for _, js := range st.Jobs() {
		if js.Info.Status.Finished() {
			var result any
			if len(js.Result) > 0 {
				result = js.Result
			}
			svc.Restore(js.Info, result)
			restored++
			continue
		}
		var req jobRequest
		var run jobs.Runner
		var err error
		if uerr := json.Unmarshal(js.Spec, &req); uerr != nil {
			err = fmt.Errorf("stored spec: %w", uerr)
		} else {
			run, _, err = srv.runnerFor(req)
		}
		if err != nil {
			// The acknowledgment stands even if the spec no longer
			// parses: surface a terminal failure, never a silent drop.
			info := js.Info
			info.Status = jobs.StatusFailed
			info.Error = "recovery: " + err.Error()
			info.Finished = time.Now()
			svc.Restore(info, nil)
			restored++
			continue
		}
		if rerr := svc.Resubmit(js.Info, run); rerr == nil {
			resumed++
		}
	}
	return restored, resumed
}

// cmdServe runs the supervised job service until the first
// SIGINT/SIGTERM, then drains: admission stops, in-flight jobs finish,
// and past -drain-timeout the remaining jobs are canceled. The exit is
// clean either way; a second signal hard-exits.
func cmdServe(ctx context.Context, args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 2, "worker-pool size")
	queue := fs.Int("queue", 16, "admission-queue bound; a full queue sheds submissions with 503")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline (0: none)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "hard deadline for the shutdown drain")
	ckptDir := fs.String("checkpoint-dir", "", "directory for per-job resume snapshots")
	storeDir := fs.String("store-dir", "", "directory for the durable job store (WAL + snapshot); restarts recover acknowledged jobs")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant admission rate in jobs/s (0: unlimited); over-quota answers 429")
	tenantBurst := fs.Int("tenant-burst", 8, "per-tenant token-bucket burst")
	cacheDir := fs.String("cache-dir", "", "persistent content-addressed evaluation store: resubmitted jobs and repeated configs answer from it, across tenants and restarts")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "evaluation-store size bound in bytes (0: 64 MiB); oldest segments evicted first")
	fs.Parse(args)

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			return err
		}
		defer st.Close()
		if rec := st.Recovery(); rec.SnapshotCorrupt || rec.WALErr != "" {
			fmt.Printf("patty serve: store repaired (snapshot corrupt: %v, wal: %q, %d byte(s) truncated)\n",
				rec.SnapshotCorrupt, rec.WALErr, rec.WALTruncated)
		}
	}
	opts := jobs.Options{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		Collector:   metrics,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
	}
	if st != nil {
		opts.Journal = st
	}
	svc := jobs.New(opts)
	srv := newServer(svc, *ckptDir)
	if *cacheDir != "" {
		// The evaluation store opens — and finishes its own torn-tail /
		// quarantine recovery — before job recovery replays the WAL, so
		// a resubmitted unfinished job can already answer from it.
		cache, err := evalcache.Open(*cacheDir, evalcache.Options{
			MaxBytes: *cacheMaxBytes, Collector: metrics,
		})
		if err != nil {
			return err
		}
		defer cache.Close()
		if rec := cache.Recovery(); rec.TornBytes > 0 || len(rec.Quarantined) > 0 {
			fmt.Printf("patty serve: cache repaired (%d entr(y/ies) recovered, %d torn byte(s) dropped, %d segment(s) quarantined)\n",
				rec.Entries, rec.TornBytes, len(rec.Quarantined))
		}
		srv.cache = cache
	}
	if st != nil {
		// Recovery completes before the listening banner, so a harness
		// that saw the banner can immediately read restored state.
		restored, resumed := recoverJobs(svc, srv, st)
		if restored+resumed > 0 {
			fmt.Printf("patty serve: recovered %d finished, resumed %d unfinished job(s)\n", restored, resumed)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Parseable by harnesses: the one line on stdout before serving.
	fmt.Printf("patty serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Drain: stop admission, let in-flight jobs finish, hard-cancel at
	// the deadline. The HTTP listener stays up until the drain ends so
	// clients can still poll status/results while jobs wind down.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Printf("patty serve: drain deadline hit, canceled remaining jobs\n")
	} else {
		fmt.Printf("patty serve: drained cleanly\n")
	}
	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	hs.Shutdown(sctx)
	return nil
}
