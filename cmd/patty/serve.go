package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"patty/internal/difftest"
	"patty/internal/fleet"
	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/report"
	"patty/internal/study"
)

// jobRequest is the POST /jobs body. Kind selects the workload; the
// tune fields are embedded flat, fuzz and study add theirs beside it.
type jobRequest struct {
	Kind string `json:"kind"` // tune | fuzz | study
	tuneSpec
	// Fuzz fields.
	Seed    int64 `json:"seed,omitempty"`
	N       int   `json:"n,omitempty"`
	Configs int   `json:"configs,omitempty"`
	// Study fields.
	Measured bool `json:"measured,omitempty"`
}

// fuzzJobResult is the JSON result of a serve fuzz job.
type fuzzJobResult struct {
	Programs    int            `json:"programs"`
	Kinds       map[string]int `json:"kinds"`
	Divergences int            `json:"divergences"`
	Seeds       []int64        `json:"divergent_seeds,omitempty"`
}

// server routes HTTP onto a jobs.Service.
type server struct {
	svc     *jobs.Service
	ckptDir string
	// intake is the admission breaker: shed submissions trip it and its
	// remaining cooldown becomes the 503 Retry-After value, so the
	// advertised backoff grows while an overload persists.
	intake *jobs.Breaker
}

// newServer wires the HTTP surface onto a job service.
func newServer(svc *jobs.Service, ckptDir string) *server {
	return &server{svc: svc, ckptDir: ckptDir, intake: jobs.NewBreaker(3, time.Second)}
}

// runnerFor translates a validated request into the job's Runner.
// Checkpoint paths default into -checkpoint-dir, derived from the job
// parameters, so a resubmitted job after a crash resumes the same
// snapshot.
func (s *server) runnerFor(req jobRequest) (jobs.Runner, error) {
	switch req.Kind {
	case "tune":
		spec := req.tuneSpec.withDefaults()
		if spec.Checkpoint == "" && s.ckptDir != "" {
			spec.Checkpoint = filepath.Join(s.ckptDir,
				fmt.Sprintf("tune-%s-b%d-c%d.ckpt", spec.Algo, spec.Budget, spec.Cores))
		}
		if len(spec.Workers) > 0 {
			// A workers field shards the search across a fleet; the
			// merged result is identical to the local run's.
			return func(ctx context.Context) (any, error) {
				return runFleetTune(ctx, spec)
			}, nil
		}
		return func(ctx context.Context) (any, error) {
			return runTune(ctx, spec)
		}, nil
	case "fuzz":
		seed, n := req.Seed, req.N
		if n <= 0 {
			n = 50
		}
		opt := difftest.Options{Configs: req.Configs}
		if opt.Configs <= 0 {
			opt.Configs = 2
		}
		ckpt := ""
		if s.ckptDir != "" {
			ckpt = filepath.Join(s.ckptDir, fmt.Sprintf("fuzz-s%d-n%d.ckpt", seed, n))
		}
		return func(ctx context.Context) (any, error) {
			var sum *difftest.Summary
			var err error
			if ckpt != "" {
				var b *difftest.Batch
				b, _, err = difftest.NewBatch(ckpt, seed, n)
				if err != nil {
					return nil, err
				}
				sum, err = b.Run(ctx, opt, nil)
			} else {
				sum, err = difftest.RunCtx(ctx, seed, n, opt, nil)
			}
			if err != nil {
				return nil, err
			}
			res := &fuzzJobResult{Programs: sum.Programs, Kinds: sum.Kinds, Divergences: len(sum.Divergences)}
			for _, d := range sum.Divergences {
				res.Seeds = append(res.Seeds, d.Div.Seed)
			}
			return res, nil
		}, nil
	case "study":
		seed, measured := req.Seed, req.Measured
		if seed == 0 {
			seed = study.DefaultSeed
		}
		ckpt := ""
		if measured && s.ckptDir != "" {
			ckpt = filepath.Join(s.ckptDir, "study-outcome.ckpt")
		}
		return func(ctx context.Context) (any, error) {
			outcome := study.PaperOutcome()
			if measured {
				var err error
				if ckpt != "" {
					outcome, _, err = study.MeasuredOutcomeCached(ckpt)
				} else {
					outcome, err = study.MeasuredOutcome()
				}
				if err != nil {
					return nil, err
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return study.Run(seed, outcome), nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q (want tune, fuzz or study)", req.Kind)
	}
}

// writeJSON writes v with status code (shared with the fleet intakes).
func writeJSON(w http.ResponseWriter, code int, v any) {
	fleet.WriteJSON(w, code, v)
}

// jsonError is the error envelope of every non-2xx JSON answer.
func jsonError(w http.ResponseWriter, code int, err error) {
	fleet.WriteError(w, code, err)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if !fleet.DecodeJSON(w, r, fleet.MaxBodyBytes, &req) {
		return
	}
	run, err := s.runnerFor(req)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.svc.Submit(req.Kind, run)
	switch {
	case errors.Is(err, jobs.ErrOverloaded), errors.Is(err, jobs.ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(jobs.ShedRetryAfter(s.intake)))
		jsonError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.intake.Record(jobs.IntakeKey, false)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("wait") != "" {
		info, err := s.svc.Wait(r.Context(), id)
		if err != nil {
			s.jobError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	info, err := s.svc.Status(id)
	if err != nil {
		s.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, info, err := s.svc.Result(r.PathValue("id"))
	if err != nil {
		s.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"info": info, "result": res})
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.svc.Cancel(id); err != nil {
		s.jobError(w, err)
		return
	}
	info, err := s.svc.Status(id)
	if err != nil {
		s.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// jobError maps service errors to status codes.
func (s *server) jobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		jsonError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrNotFinished):
		jsonError(w, http.StatusConflict, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		jsonError(w, http.StatusRequestTimeout, err)
	default:
		jsonError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.svc.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.svc.Draining() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		snap := metrics.Snapshot()
		h, _ := obs.AnalyzeService(snap)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.ServiceTable(h))
		if fh, ok := obs.AnalyzeFleet(snap); ok {
			fmt.Fprint(w, report.FleetTable(fh))
		}
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metrics.Snapshot())
	})
	return mux
}

// cmdServe runs the supervised job service until the first
// SIGINT/SIGTERM, then drains: admission stops, in-flight jobs finish,
// and past -drain-timeout the remaining jobs are canceled. The exit is
// clean either way; a second signal hard-exits.
func cmdServe(ctx context.Context, args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 2, "worker-pool size")
	queue := fs.Int("queue", 16, "admission-queue bound; a full queue sheds submissions with 503")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline (0: none)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "hard deadline for the shutdown drain")
	ckptDir := fs.String("checkpoint-dir", "", "directory for per-job resume snapshots")
	fs.Parse(args)

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}
	svc := jobs.New(jobs.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		Collector:  metrics,
	})
	srv := newServer(svc, *ckptDir)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Parseable by harnesses: the one line on stdout before serving.
	fmt.Printf("patty serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Drain: stop admission, let in-flight jobs finish, hard-cancel at
	// the deadline. The HTTP listener stays up until the drain ends so
	// clients can still poll status/results while jobs wind down.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Printf("patty serve: drain deadline hit, canceled remaining jobs\n")
	} else {
		fmt.Printf("patty serve: drained cleanly\n")
	}
	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	hs.Shutdown(sctx)
	return nil
}
