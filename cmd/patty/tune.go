package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strings"
	"time"

	"patty/internal/evalcache"
	"patty/internal/fleet"
	"patty/internal/jobs"
	"patty/internal/netchaos"
	"patty/internal/obs"
	"patty/internal/perfmodel"
	"patty/internal/report"
	"patty/internal/tuning"
)

// tuneSpec is one auto-tuning request — the CLI flags of `patty tune`
// and the JSON body of a serve tune job share it.
type tuneSpec struct {
	Algo   string `json:"algo"`
	Budget int    `json:"budget"`
	Cores  int    `json:"cores"`
	// Checkpoint, when set, journals every evaluation to this file and
	// resumes from it: a killed search restarted with the same spec
	// fast-forwards through the completed prefix and converges to the
	// same best as an uninterrupted run.
	Checkpoint string `json:"checkpoint,omitempty"`
	// EvalDelayMs stretches each fresh evaluation (kill-and-restart
	// harnesses use it to land a SIGKILL mid-search).
	EvalDelayMs int `json:"eval_delay_ms,omitempty"`
	// FaultRate (percent) makes that fraction of configurations fault
	// persistently, chosen by a deterministic hash with FaultSeed, so
	// the circuit breaker has something to quarantine and a restarted
	// run condemns the same configurations.
	FaultRate int   `json:"fault_rate,omitempty"`
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// BreakerThreshold is the consecutive-fault count that quarantines
	// a configuration (default 3).
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// Workers, when non-empty, shards the search across these `patty
	// worker` base URLs instead of evaluating in-process; the merged
	// result is identical to the local run by construction (see
	// internal/fleet).
	Workers []string `json:"workers,omitempty"`
	// NetChaos, when set, routes every shard dispatch through a
	// deterministic wire-fault injector built from this plan
	// (hostile-network drills; see internal/netchaos).
	NetChaos *netchaos.PlanSpec `json:"net_chaos,omitempty"`
	// CrossCheck is the byzantine audit width per completed shard
	// (0: fleet default of 2; -1 disables auditing).
	CrossCheck int `json:"cross_check,omitempty"`
	// LeaseTTLMs bounds one shard dispatch (0: fleet default of 30s).
	LeaseTTLMs int `json:"lease_ttl_ms,omitempty"`
	// CacheDir, when set, opens the persistent content-addressed
	// evaluation store there (internal/evalcache): configurations this
	// workload identity has ever measured — in any run, by any tenant,
	// before any restart — answer from the store instead of being
	// re-evaluated. CacheMaxBytes bounds the store on disk (0: the
	// evalcache default of 64 MiB).
	CacheDir      string `json:"cache_dir,omitempty"`
	CacheMaxBytes int64  `json:"cache_max_bytes,omitempty"`

	// cache and cacheTenant are the serve path's injection points: the
	// server's long-lived shared store and the submitting tenant (hit
	// attribution only — never part of the address). The CLI path opens
	// its own store from CacheDir instead.
	cache       *evalcache.Store
	cacheTenant string
}

func (s tuneSpec) withDefaults() tuneSpec {
	if s.Algo == "" {
		s.Algo = "linear"
	}
	if s.Budget <= 0 {
		s.Budget = 150
	}
	if s.Cores <= 0 {
		s.Cores = 8
	}
	if s.BreakerThreshold <= 0 {
		s.BreakerThreshold = 3
	}
	return s
}

// tuneOutcome is the JSON-able result of one tuning run.
type tuneOutcome struct {
	Algo        string              `json:"algo"`
	Best        map[string]int      `json:"best"`
	Cost        float64             `json:"cost"`
	Evaluations int                 `json:"evaluations"`
	Interrupted bool                `json:"interrupted,omitempty"`
	Explored    int                 `json:"explored,omitempty"`
	Resumed     int                 `json:"resumed,omitempty"`
	Quarantined []string            `json:"quarantined,omitempty"`
	Trace       []tuning.TracePoint `json:"trace,omitempty"`
	// Fleet carries the distributed-run statistics when the search was
	// sharded across workers.
	Fleet *fleet.Stats `json:"fleet,omitempty"`
}

// tuneWorkload is the performance-model workload every tune run
// optimizes (the paper's five-stage oil-painting pipeline).
func tuneWorkload(cores int) (dims []tuning.Dim, start map[string]int, obj tuning.Objective) {
	stages := []perfmodel.Stage{
		{Name: "crop", Time: 200, Replicable: true},
		{Name: "histo", Time: 240, Replicable: true},
		{Name: "oil", Time: 1600, Jitter: 300, Replicable: true},
		{Name: "conv", Time: 180, Replicable: true},
		{Name: "add", Time: 60},
	}
	dims = []tuning.Dim{
		{Key: "repl.oil", Min: 1, Max: 8},
		{Key: "fuse.crop.histo", Min: 0, Max: 1},
		{Key: "sequential", Min: 0, Max: 1},
	}
	start = map[string]int{"repl.oil": 1, "fuse.crop.histo": 0, "sequential": 1}
	obj = func(a map[string]int) float64 {
		cfg := perfmodel.Config{
			Cores:       cores,
			Items:       256,
			Replication: []int{1, 1, a["repl.oil"], 1, 1},
			Fuse:        []bool{a["fuse.crop.histo"] == 1, false, false, false},
			Sequential:  a["sequential"] == 1,
		}
		return float64(perfmodel.Simulate(stages, cfg).Makespan)
	}
	return dims, start, obj
}

// tunerFor maps an algorithm name to its tuner.
func tunerFor(algo string) (tuning.Tuner, error) {
	switch algo {
	case "linear":
		return tuning.LinearSearch{}, nil
	case "nelder-mead":
		return tuning.NelderMead{}, nil
	case "tabu":
		return tuning.TabuSearch{}, nil
	case "random":
		return tuning.RandomSearch{Seed: 1}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

// evalSpec is the slice of a tuneSpec a worker needs to rebuild the
// objective. It travels as the opaque fleet shard spec: coordinator and
// `patty worker` agree on it, the fleet package never looks inside.
type evalSpec struct {
	Cores       int   `json:"cores"`
	EvalDelayMs int   `json:"eval_delay_ms,omitempty"`
	FaultRate   int   `json:"fault_rate,omitempty"`
	FaultSeed   int64 `json:"fault_seed,omitempty"`
}

func (s tuneSpec) evalSpec() evalSpec {
	return evalSpec{Cores: s.Cores, EvalDelayMs: s.EvalDelayMs,
		FaultRate: s.FaultRate, FaultSeed: s.FaultSeed}
}

// cacheIdentity derives the store address of this spec's workload. The
// program slot hashes everything that changes a configuration's cost
// (cores, fault shape); the seed slot carries FaultSeed. EvalDelayMs
// is excluded — it stretches wall-clock, never the modelled cost — so
// a kill-harness run warms the cache for undelayed ones.
func (s tuneSpec) cacheIdentity() (string, int64) {
	es := s.evalSpec()
	es.EvalDelayMs = 0
	es.FaultSeed = 0 // carried by the key's seed slot instead
	h, err := evalcache.SpecHash("tune-workload/v1", es)
	if err != nil { // unreachable: evalSpec is plain marshalable data
		return "", 0
	}
	return h, s.FaultSeed
}

// openCache resolves the spec's evaluation store: the serve-injected
// shared one (no-op closer — the server owns its lifetime), a private
// one opened from CacheDir, or none.
func (s tuneSpec) openCache() (*evalcache.Store, func(), error) {
	if s.cache != nil {
		return s.cache, func() {}, nil
	}
	if s.CacheDir == "" {
		return nil, func() {}, nil
	}
	cs, err := evalcache.Open(s.CacheDir, evalcache.Options{
		MaxBytes: s.CacheMaxBytes, Collector: metrics,
	})
	if err != nil {
		return nil, nil, err
	}
	return cs, func() { cs.Close() }, nil
}

// workload builds the tuning workload with the fault and delay shims
// applied — the one objective stack local runs, fleet workers, and the
// replay's table-miss fallback all share, which is what makes a
// worker-measured cost interchangeable with a local one.
func (e evalSpec) workload(ctx context.Context) (dims []tuning.Dim, start map[string]int, obj tuning.Objective) {
	cores := e.Cores
	if cores <= 0 {
		cores = 8
	}
	dims, start, obj = tuneWorkload(cores)
	if e.FaultRate > 0 {
		inner := obj
		rate, fseed := e.FaultRate, e.FaultSeed
		obj = func(a map[string]int) float64 {
			if faultsConfig(a, rate, fseed) {
				return math.Inf(1)
			}
			return inner(a)
		}
	}
	if e.EvalDelayMs > 0 {
		inner := obj
		delay := time.Duration(e.EvalDelayMs) * time.Millisecond
		obj = func(a map[string]int) float64 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
			}
			return inner(a)
		}
	}
	return dims, start, obj
}

// parseChaosPlan turns the -net-chaos / -chaos flag value into a plan
// spec: empty means no injection, "gate" is the pinned drill plan
// (netchaos.GateSpec), anything else is PlanSpec JSON.
func parseChaosPlan(s string) (*netchaos.PlanSpec, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return nil, nil
	case "gate":
		ps := netchaos.GateSpec()
		return &ps, nil
	}
	var ps netchaos.PlanSpec
	if err := json.Unmarshal([]byte(s), &ps); err != nil {
		return nil, fmt.Errorf("bad chaos plan %q: %w", s, err)
	}
	return &ps, nil
}

// faultsConfig decides deterministically whether a configuration
// faults under (rate, seed): the verdict is a pure function of the
// canonical assignment key, so a restarted process condemns the exact
// same configurations.
func faultsConfig(a map[string]int, rate int, fseed int64) bool {
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%s", fseed, tuning.AssignKey(a))
	return int(h.Sum64()%100) < rate
}

// runTune executes one auto-tuning search with the full supervision
// stack: Observed measurement, circuit breaker quarantine, and
// (optionally) the crash-safe evaluation journal. The wrapper order,
// innermost first: raw objective → fault/delay shims → Observed.Wrap
// (measures, flags faults) → GuardObjective (retries, quarantines) →
// Checkpointer.Wrap (journals, replays) → the tuner's own evaluator.
func runTune(ctx context.Context, spec tuneSpec) (*tuneOutcome, error) {
	spec = spec.withDefaults()
	tn, err := tunerFor(spec.Algo)
	if err != nil {
		return nil, err
	}
	dims, start, obj := spec.evalSpec().workload(ctx)

	cache, closeCache, err := spec.openCache()
	if err != nil {
		return nil, err
	}
	defer closeCache()

	// The Observed gets a private collector: its per-evaluation Reset
	// must not wipe the process-wide jobs.* instruments.
	o := &tuning.Observed{Collector: obs.New()}
	if cache != nil {
		prog, cseed := spec.cacheIdentity()
		o.Cache, o.CacheProgram, o.CacheSeed = cache, prog, cseed
		o.CacheTenant = spec.cacheTenant
	}
	br := jobs.NewBreaker(spec.BreakerThreshold, 30*time.Second).Instrument(metrics)
	obj = jobs.GuardObjective(br, o, o.Wrap(obj))

	var ck *tuning.Checkpointer
	if spec.Checkpoint != "" {
		meta := tuning.SearchMeta{Algo: spec.Algo, Budget: spec.Budget, Dims: dims, Start: start}
		var err error
		ck, _, err = tuning.NewCheckpointer(spec.Checkpoint, meta)
		if err != nil {
			return nil, err
		}
		br.Restore(ck.Quarantined())
		ck.Quarantine = br.Quarantined
		obj = ck.Wrap(obj)
	}

	res := tn.TuneCtx(ctx, dims, start, obj, spec.Budget)
	out := &tuneOutcome{
		Algo:        tn.Name(),
		Best:        res.Best,
		Cost:        res.BestCost,
		Evaluations: res.Evaluations,
		Interrupted: res.Interrupted,
		Quarantined: br.Quarantined(),
		Trace:       res.Trace,
	}
	if ck != nil {
		if err := ck.Flush(); err != nil {
			return out, fmt.Errorf("checkpoint not durable: %w", err)
		}
		out.Explored = ck.Explored()
		out.Resumed = ck.Resumed()
	}
	if res.Err != nil {
		return out, res.Err
	}
	return out, nil
}

// runFleetTune executes one auto-tuning search sharded across `patty
// worker` processes (internal/fleet): the coordinator leases shards of
// the enumerated space to the workers, merges the per-configuration
// costs, and replays the search algorithm locally against the merged
// table. The outcome matches runTune's for the same spec by
// construction; the Stats report what the fleet did to get there.
func runFleetTune(ctx context.Context, spec tuneSpec) (*tuneOutcome, error) {
	spec = spec.withDefaults()
	tn, err := tunerFor(spec.Algo)
	if err != nil {
		return nil, err
	}
	es := spec.evalSpec()
	dims, start, obj := es.workload(ctx)
	specJSON, err := json.Marshal(es)
	if err != nil {
		return nil, err
	}
	var client *http.Client
	if spec.NetChaos != nil {
		// The injector is instrumented into the process-wide collector, so
		// the fired fault classes (fleet.net.injected.*) land next to the
		// coordinator's observed ones (fleet.net.*) in the same report.
		inj := netchaos.New(spec.NetChaos.Plan()).Instrument(metrics)
		client = &http.Client{Transport: inj.Transport(http.DefaultTransport)}
		defer client.CloseIdleConnections()
	}
	cache, closeCache, err := spec.openCache()
	if err != nil {
		return nil, err
	}
	defer closeCache()
	fopts := fleet.Options{
		Workers:          spec.Workers,
		Spec:             specJSON,
		LocalObjective:   obj,
		Checkpoint:       spec.Checkpoint,
		Collector:        metrics,
		BreakerThreshold: spec.BreakerThreshold,
		Observed:         &tuning.Observed{Collector: obs.New()},
		Client:           client,
		CrossCheck:       spec.CrossCheck,
		LeaseTTL:         time.Duration(spec.LeaseTTLMs) * time.Millisecond,
	}
	if cache != nil {
		prog, cseed := spec.cacheIdentity()
		fopts.Cache, fopts.CacheProgram, fopts.CacheSeed = cache, prog, cseed
		fopts.CacheTenant = spec.cacheTenant
	}
	res, st, err := fleet.Tune(ctx, tn, dims, start, spec.Budget, fopts)
	if err != nil {
		return nil, err
	}
	out := &tuneOutcome{
		Algo:        tn.Name(),
		Best:        res.Best,
		Cost:        res.BestCost,
		Evaluations: res.Evaluations,
		Interrupted: res.Interrupted,
		Explored:    st.Merged + st.LocalEvals,
		Resumed:     st.Resumed,
		Quarantined: st.Quarantined,
		Trace:       res.Trace,
		Fleet:       st,
	}
	if res.Err != nil {
		return out, res.Err
	}
	return out, nil
}

func cmdTune(ctx context.Context, args []string) error {
	fs := newFlagSet("tune")
	var spec tuneSpec
	fs.StringVar(&spec.Algo, "algo", "linear", "linear | nelder-mead | tabu | random")
	fs.IntVar(&spec.Budget, "budget", 150, "objective evaluations")
	fs.IntVar(&spec.Cores, "cores", 8, "modelled core count")
	fs.StringVar(&spec.Checkpoint, "checkpoint", "", "journal evaluations to this file and resume from it")
	fs.IntVar(&spec.EvalDelayMs, "eval-delay", 0, "milliseconds each fresh evaluation takes (kill-harness pacing)")
	fs.IntVar(&spec.FaultRate, "fault-rate", 0, "percent of configurations that fault persistently (breaker demo)")
	fs.Int64Var(&spec.FaultSeed, "fault-seed", 1, "seed selecting which configurations fault")
	workersFlag := fs.String("workers", "", "comma-separated worker URLs: shard the search across patty worker processes")
	netChaosFlag := fs.String("net-chaos", "", `wire-fault plan JSON (or "gate" for the pinned drill plan): inject deterministic faults into shard dispatch`)
	fs.IntVar(&spec.CrossCheck, "cross-check", 0, "byzantine audit width per shard (0: default 2, -1: disable)")
	leaseTTL := fs.Duration("lease-ttl", 0, "shard lease TTL (0: fleet default)")
	fs.StringVar(&spec.CacheDir, "cache-dir", "", "persistent content-addressed evaluation store: already-measured configs answer from it across runs and restarts")
	fs.Int64Var(&spec.CacheMaxBytes, "cache-max-bytes", 0, "evaluation-store size bound in bytes (0: 64 MiB); oldest segments evicted first")
	fs.Parse(args)
	for _, u := range strings.Split(*workersFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			spec.Workers = append(spec.Workers, u)
		}
	}
	if ps, err := parseChaosPlan(*netChaosFlag); err != nil {
		return err
	} else if ps != nil {
		spec.NetChaos = ps
	}
	spec.LeaseTTLMs = int(leaseTTL.Milliseconds())

	var out *tuneOutcome
	var err error
	if len(spec.Workers) > 0 {
		out, err = runFleetTune(ctx, spec)
	} else {
		out, err = runTune(ctx, spec)
	}
	if err != nil && out == nil {
		return err
	}
	if out.Interrupted {
		fmt.Printf("interrupted: best so far %v, cost %.0f after %d evaluations\n",
			out.Best, out.Cost, out.Evaluations)
	} else {
		fmt.Printf("algorithm %s: best %v, cost %.0f after %d evaluations\n",
			out.Algo, out.Best, out.Cost, out.Evaluations)
	}
	if out.Fleet != nil {
		st := out.Fleet
		fmt.Printf("fleet: %d worker(s), %d lost; %d shard(s); merged %d eval(s), %d duplicate, %d stolen, %d redispatched, %d local\n",
			st.Workers, st.WorkersLost, st.Shards, st.Merged, st.Duplicates, st.Stolen, st.Redispatched, st.LocalEvals)
		if st.CacheHits > 0 {
			fmt.Printf("fleet: %d config(s) answered by the evaluation store before dispatch\n", st.CacheHits)
		}
		if fh, ok := obs.AnalyzeFleet(metrics.Snapshot()); ok {
			fmt.Print(report.FleetTable(fh))
		}
	}
	if spec.CacheDir != "" {
		if ch, ok := obs.AnalyzeCache(metrics.Snapshot()); ok {
			fmt.Print(report.CacheTable(ch))
		}
	}
	if spec.Checkpoint != "" {
		fmt.Printf("checkpoint %s: %d configs explored (%d replayed from a previous run)\n",
			spec.Checkpoint, out.Explored, out.Resumed)
	}
	if len(out.Quarantined) > 0 {
		fmt.Printf("breaker quarantined %d configuration(s): %v\n", len(out.Quarantined), out.Quarantined)
	}
	if err != nil {
		return err
	}
	fmt.Println("improving steps (Fig. 4c runtime-tuning view):")
	for _, p := range out.Trace {
		fmt.Printf("  eval %3d: %.0f ticks\n", p.Eval, p.Cost)
	}
	return nil
}
