package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"patty/internal/corpus"
	"patty/internal/evalcache"
	"patty/internal/jobs"
	"patty/internal/obs"
)

// cacheBenchTenant is one tenant's slice of the duplicate-resubmission
// leg: how many duplicates it offered and how many the store answered.
type cacheBenchTenant struct {
	Tenant string `json:"tenant"`
	Jobs   int    `json:"jobs"`
	Hits   int64  `json:"hits"`
}

// cacheBench is the BENCH_cache.json artifact: a skewed tenant mix
// resubmits previously-answered programs (whitespace/comment-perturbed,
// so only canonical hashing can match them) against a `patty serve`
// with an evaluation store, recording the duplicate hit rate and the
// p50/p99 latency delta between cold searches and cached answers.
type cacheBench struct {
	Programs int `json:"programs"`
	Rounds   int `json:"rounds"`
	ColdJobs int `json:"cold_jobs"`
	WarmJobs int `json:"warm_jobs"`

	DuplicateHitRate float64 `json:"duplicate_hit_rate"`
	ColdP50Ms        float64 `json:"cold_p50_ms"`
	ColdP99Ms        float64 `json:"cold_p99_ms"`
	WarmP50Ms        float64 `json:"warm_p50_ms"`
	WarmP99Ms        float64 `json:"warm_p99_ms"`
	P50SpeedupX      float64 `json:"p50_speedup_x"`
	P99SpeedupX      float64 `json:"p99_speedup_x"`

	StoreEntries int   `json:"store_entries"`
	StoreBytes   int64 `json:"store_bytes"`

	Tenants []cacheBenchTenant `json:"tenants"`
}

// cacheBenchJob builds the POST /jobs body for program i: a tune job
// carrying the program's sources. Cores varies per program so every
// job owns a distinct eval-level workload identity too — the cold pass
// must be genuinely cold at both cache layers.
func cacheBenchJob(i int, name, src string) []byte {
	body, _ := json.Marshal(map[string]any{
		"kind":    "tune",
		"algo":    "linear",
		"budget":  120,
		"cores":   4 + i,
		"sources": map[string]string{name + ".go": src},
	})
	return body
}

// submitAndWait posts one job under a tenant and waits for its terminal
// state, returning the end-to-end latency.
func submitAndWait(hc *http.Client, base, tenant string, body []byte) (time.Duration, error) {
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit: HTTP %d (%s)", resp.StatusCode, out.Error)
	}
	wresp, err := hc.Get(base + "/jobs/" + out.ID + "?wait=1")
	if err != nil {
		return 0, err
	}
	var info jobs.Info
	json.NewDecoder(wresp.Body).Decode(&info)
	wresp.Body.Close()
	if info.Status != jobs.StatusDone {
		return 0, fmt.Errorf("job %s: %s (%s)", out.ID, info.Status, info.Error)
	}
	return time.Since(t0), nil
}

// runCacheBench is the duplicate-resubmission leg of servebench: cold
// pass first (tenant t1 submits each program once, every job a real
// search), then a skewed duplicate storm (t1, t2, and a hog at 3x
// resubmitting comment-perturbed copies of the same programs) that the
// store must answer without re-running anything. Fails unless every
// duplicate hits.
func runCacheBench(ctx context.Context, smoke bool, outPath string) error {
	programs := corpus.All()
	rounds := 3
	if n := 6; len(programs) > n {
		programs = programs[:n]
	}
	if smoke {
		rounds = 1
		if len(programs) > 3 {
			programs = programs[:3]
		}
	}

	collector := obs.New()
	cacheDir := filepath.Join(os.TempDir(), fmt.Sprintf("patty-cachebench-%d", os.Getpid()))
	defer os.RemoveAll(cacheDir)
	cache, err := evalcache.Open(cacheDir, evalcache.Options{Collector: collector})
	if err != nil {
		return err
	}
	defer cache.Close()
	svc := jobs.New(jobs.Options{Workers: 4, QueueDepth: 64, Collector: collector})
	srv := newServer(svc, "")
	srv.cache = cache
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return err
	}
	hs := &http.Server{Handler: srv.mux()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		hs.Close()
		svc.Close()
	}()
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer hc.CloseIdleConnections()

	// Cold pass: every program searched for real exactly once.
	var coldLat []time.Duration
	for i, p := range programs {
		d, err := submitAndWait(hc, base, "t1", cacheBenchJob(i, p.Name, p.Source))
		if err != nil {
			return fmt.Errorf("cold %s: %w", p.Name, err)
		}
		coldLat = append(coldLat, d)
	}
	hitsBefore := cache.Stats().Hits

	// Duplicate storm: a skewed mix resubmits perturbed copies — an
	// added comment and a moved brace survive gofmt-level noise only if
	// the address is canonical, which is the point of the leg.
	type dup struct {
		tenant string
		round  int
		prog   int
	}
	var plan []dup
	for r := 0; r < rounds; r++ {
		for i := range programs {
			plan = append(plan, dup{"t1", r, i}, dup{"t2", r, i},
				dup{"hog", r, i}, dup{"hog", r, i}, dup{"hog", r, i})
		}
	}
	var warmLat []time.Duration
	perTenant := map[string]int{}
	for _, d := range plan {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := programs[d.prog]
		src := p.Source + fmt.Sprintf("\n// resubmission round %d by %s\n", d.round, d.tenant)
		lat, err := submitAndWait(hc, base, d.tenant, cacheBenchJob(d.prog, p.Name, src))
		if err != nil {
			return fmt.Errorf("duplicate %s (%s): %w", p.Name, d.tenant, err)
		}
		warmLat = append(warmLat, lat)
		perTenant[d.tenant]++
	}

	st := cache.Stats()
	warmHits := st.Hits - hitsBefore
	sort.Slice(coldLat, func(i, k int) bool { return coldLat[i] < coldLat[k] })
	sort.Slice(warmLat, func(i, k int) bool { return warmLat[i] < warmLat[k] })
	bench := cacheBench{
		Programs: len(programs), Rounds: rounds,
		ColdJobs: len(coldLat), WarmJobs: len(warmLat),
		DuplicateHitRate: float64(warmHits) / float64(len(warmLat)),
		ColdP50Ms:        quantileMs(coldLat, 0.50),
		ColdP99Ms:        quantileMs(coldLat, 0.99),
		WarmP50Ms:        quantileMs(warmLat, 0.50),
		WarmP99Ms:        quantileMs(warmLat, 0.99),
		StoreEntries:     st.Entries,
		StoreBytes:       st.Bytes,
	}
	if bench.WarmP50Ms > 0 {
		bench.P50SpeedupX = bench.ColdP50Ms / bench.WarmP50Ms
	}
	if bench.WarmP99Ms > 0 {
		bench.P99SpeedupX = bench.ColdP99Ms / bench.WarmP99Ms
	}
	snap := collector.Snapshot()
	for _, tenant := range []string{"t1", "t2", "hog"} {
		bench.Tenants = append(bench.Tenants, cacheBenchTenant{
			Tenant: tenant, Jobs: perTenant[tenant],
			Hits: snap.Counters["cache.tenant."+tenant+".hits"],
		})
	}

	fmt.Printf("cache leg: %d cold / %d duplicate job(s) over %d program(s), hit rate %.2f\n",
		bench.ColdJobs, bench.WarmJobs, bench.Programs, bench.DuplicateHitRate)
	fmt.Printf("cache leg: p50 %.2f -> %.2f ms (%.1fx), p99 %.2f -> %.2f ms (%.1fx)\n",
		bench.ColdP50Ms, bench.WarmP50Ms, bench.P50SpeedupX,
		bench.ColdP99Ms, bench.WarmP99Ms, bench.P99SpeedupX)

	if outPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if warmHits < int64(len(warmLat)) {
		return fmt.Errorf("cache leg: only %d of %d duplicates hit the store", warmHits, len(warmLat))
	}
	return nil
}
