package main

import (
	"context"
	"errors"
	"flag"
	"fmt"

	"patty/internal/difftest"
	"patty/internal/interp"
	"patty/internal/seed"
)

// setDefaultEngine applies a subcommand's -engine flag: it pins the
// package-wide default, so every Machine created downstream (model
// enrichment, difftest legs, corpus evaluation) runs on that engine.
func setDefaultEngine(name string) error {
	eng, err := interp.ParseEngine(name)
	if err != nil {
		return err
	}
	interp.DefaultEngine = eng
	return nil
}

// cmdFuzz drives the differential fuzzing harness: generate programs,
// run each through detect → TADL → transform → parrt against the
// sequential oracle, shrink any divergence to a minimal reproducer and
// persist it. Exit status is non-zero when a divergence survives, so
// the command doubles as a CI gate. With -checkpoint the sweep is
// journaled and a killed run resumes at the next unchecked program; a
// SIGINT prints the summary so far.
func cmdFuzz(ctx context.Context, args []string) error {
	fs := newFlagSet("fuzz")
	baseSeed := fs.Int64("seed", seed.Default, "base seed; program i is generated from seed.Mix(seed, i)")
	n := fs.Int("n", 200, "number of generated programs")
	shrink := fs.Bool("shrink", true, "delta-debug divergences to minimal reproducers")
	configs := fs.Int("configs", 3, "random tuning configurations per candidate")
	static := fs.Bool("static", false, "skip dynamic model enrichment")
	faults := fs.Bool("faults", false, "run fault-injection legs (retry must heal, skip must drop exactly the killed items)")
	schedEvery := fs.Int("sched-every", 25, "schedule-explore every k-th program (0: never; ignored with -checkpoint)")
	reproDir := fs.String("repro-dir", "patty-out", "directory for reproducer files")
	checkSeed := fs.Int64("check-seed", 0, "replay one exact program seed (from a reproducer file) and exit")
	ckpt := fs.String("checkpoint", "", "journal sweep progress to this file and resume from it")
	engineFlag := fs.String("engine", "auto", "interpreter engine for the oracle and execution legs: auto | tree | vm")
	fs.Parse(args)
	if err := setDefaultEngine(*engineFlag); err != nil {
		return err
	}

	opt := difftest.Options{Configs: *configs, Static: *static, Faults: *faults}

	replay := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "check-seed" {
			replay = true
		}
	})
	if replay {
		opt.Sched = true
		return fuzzOne(difftest.Generate(*checkSeed, difftest.GenOptions{}), opt, *shrink, *reproDir)
	}

	if *ckpt != "" {
		return fuzzCheckpointed(ctx, *ckpt, *baseSeed, *n, opt, *shrink, *reproDir)
	}

	kinds := make(map[string]int)
	divergences := 0
	checked := 0
	interrupted := false
	for i := 0; i < *n; i++ {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		p := difftest.Generate(seed.Mix(*baseSeed, int64(i)), difftest.GenOptions{})
		opt.Sched = *schedEvery > 0 && i%*schedEvery == 0
		res, err := checkSafe(p, opt)
		if err != nil {
			return err
		}
		checked++
		kinds[res.Kind]++
		if res.Div == nil {
			continue
		}
		divergences++
		if err := fuzzOne(p, opt, *shrink, *reproDir); err != nil {
			fmt.Println(err)
		}
	}
	printFuzzSummary(checked, *baseSeed, kinds, divergences, interrupted)
	if divergences > 0 {
		return fmt.Errorf("%d divergence(s) found", divergences)
	}
	if interrupted {
		return ctx.Err()
	}
	return nil
}

// fuzzCheckpointed runs the sweep through the crash-safe journal: a
// previous run's progress (kill -9 included) is resumed instead of
// redone, and divergent seeds recorded before the crash are re-derived
// into the summary.
func fuzzCheckpointed(ctx context.Context, path string, baseSeed int64, n int, opt difftest.Options, shrink bool, reproDir string) error {
	b, resumed, err := difftest.NewBatch(path, baseSeed, n)
	if err != nil {
		return err
	}
	if resumed > 0 {
		fmt.Printf("checkpoint %s: resuming at program %d of %d\n", path, resumed, n)
	}
	sum, runErr := b.Run(ctx, opt, func(msg string) { fmt.Println(msg) })
	interrupted := errors.Is(runErr, context.Canceled)
	if runErr != nil && !interrupted {
		return runErr
	}
	printFuzzSummary(sum.Programs, baseSeed, sum.Kinds, len(sum.Divergences), interrupted)
	for _, res := range sum.Divergences {
		if err := fuzzOne(difftest.Generate(res.Div.Seed, difftest.GenOptions{}), opt, shrink, reproDir); err != nil {
			fmt.Println(err)
		}
	}
	if len(sum.Divergences) > 0 {
		return fmt.Errorf("%d divergence(s) found", len(sum.Divergences))
	}
	return runErr
}

// printFuzzSummary renders the per-kind tally shared by both sweep modes.
func printFuzzSummary(checked int, baseSeed int64, kinds map[string]int, divergences int, interrupted bool) {
	if interrupted {
		fmt.Print("interrupted: ")
	}
	fmt.Printf("checked %d programs (base seed %d): ", checked, baseSeed)
	for i, k := range []string{"data-parallel", "master-worker", "pipeline", "rejected"} {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %d", k, kinds[k])
	}
	fmt.Printf("; %d divergence(s)\n", divergences)
}

// checkFn is the differential checker; a seam so tests can stand in a
// faulting implementation.
var checkFn = difftest.Check

// checkSafe guards one differential check against runtime faults that
// escape the harness itself (a crashed collector, a broken pattern
// runtime): the raw panic trace becomes a one-line diagnostic and the
// command exits non-zero instead of dumping goroutine stacks.
func checkSafe(p *difftest.Prog, opt difftest.Options) (res *difftest.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("runtime fault: %v (replay: patty fuzz -check-seed %d)", r, p.Seed)
		}
	}()
	return checkFn(p, opt), nil
}

// fuzzOne checks a single program and, on divergence, shrinks it and
// writes the reproducer file.
func fuzzOne(p *difftest.Prog, opt difftest.Options, shrink bool, reproDir string) error {
	res, err := checkSafe(p, opt)
	if err != nil {
		return err
	}
	if res.Div == nil {
		fmt.Printf("seed %d: %s, no divergence\n", p.Seed, res.Kind)
		return nil
	}
	d := res.Div
	small := p
	if shrink {
		small, d = difftest.Shrink(p, opt, 0)
	}
	path, err := difftest.WriteRepro(reproDir, small, d)
	if err != nil {
		return fmt.Errorf("divergence %s (failed to write reproducer: %v)", d, err)
	}
	return fmt.Errorf("divergence %s\n  reproducer: %s (%d loop lines)", d, path, small.LoopLines())
}
