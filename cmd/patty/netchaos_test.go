package main

import (
	"context"
	"net/http"
	"reflect"
	"testing"
	"time"

	"patty/internal/ptest"
)

// TestCLINetChaosByzantine is the CLI half of the hostile-network gate:
// two real `patty worker` processes run with `-chaos gate` (their
// intakes throttle, delay and drop requests deterministically) beside
// one `-byzantine-rate 100` liar that answers fast, well-formed and
// wrong. The coordinator must quarantine the liar via cross-check,
// absorb the wire faults, and still produce the exact local result.
func TestCLINetChaosByzantine(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	spec := tuneSpec{Algo: "tabu", Budget: 120}
	ref, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	_, honest1 := startWorkerProc(t, "-chaos", "gate")
	_, honest2 := startWorkerProc(t, "-chaos", "gate")
	_, liar := startWorkerProc(t, "-byzantine-rate", "100", "-byzantine-seed", "7")

	fspec := spec
	fspec.Workers = []string{honest1, honest2, liar}
	fspec.CrossCheck = 2
	fspec.LeaseTTLMs = 2000

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	out, err := runFleetTune(ctx, fspec)
	if err != nil {
		t.Fatalf("fleet run under chaos: %v", err)
	}
	if !reflect.DeepEqual(out.Best, ref.Best) || out.Cost != ref.Cost ||
		out.Evaluations != ref.Evaluations || !reflect.DeepEqual(out.Trace, ref.Trace) {
		t.Fatalf("chaos run diverged from local:\n got best %v cost %.0f evals %d\nwant best %v cost %.0f evals %d",
			out.Best, out.Cost, out.Evaluations, ref.Best, ref.Cost, ref.Evaluations)
	}
	st := out.Fleet
	if len(st.ByzantineQuarantined) != 1 || st.ByzantineQuarantined[0] != liar {
		t.Fatalf("quarantined = %v, want exactly the liar %s", st.ByzantineQuarantined, liar)
	}
	if st.Divergent < 1 || st.CrossChecked < 1 {
		t.Fatalf("audit never fired: %+v", st)
	}
	// The server-side injectors live in the worker processes, but their
	// faults arrive here classified: the gate plan's throttle class must
	// have been observed (429 + Retry-After honored, not counted as a
	// worker failure).
	if st.NetFaults["throttle"] < 1 {
		t.Fatalf("no throttle observed through the chaos intake: %v", st.NetFaults)
	}
	for _, h := range st.Health {
		if h.Worker == liar && !h.Quarantined {
			t.Fatalf("liar's health row not quarantined: %+v", h)
		}
		if h.Worker != liar && h.Quarantined {
			t.Fatalf("honest worker quarantined: %+v", h)
		}
	}
}

// TestCLITuneNetChaosFlags drives `patty tune` itself — flag parsing
// included — with a client-side latency-only chaos plan, an explicit
// cross-check width and lease TTL, against one in-process worker.
func TestCLITuneNetChaosFlags(t *testing.T) {
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	url, stop, err := startInprocWorker(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	before := metrics.Snapshot().Counters["fleet.net.injected.latency"]
	err = cmdTune(context.Background(), []string{
		"-algo", "linear", "-budget", "60",
		"-workers", url,
		"-net-chaos", `{"seed":1,"latency_rate":1,"latency_ms":1}`,
		"-cross-check", "2",
		"-lease-ttl", "5s",
	})
	if err != nil {
		t.Fatalf("tune -net-chaos: %v", err)
	}
	after := metrics.Snapshot().Counters["fleet.net.injected.latency"]
	if after <= before {
		t.Fatalf("client-side injector never fired latency (counter %d -> %d)", before, after)
	}
}

// TestCLIChaosPlanParsing pins the flag grammar: empty, "gate", valid
// JSON, and garbage.
func TestCLIChaosPlanParsing(t *testing.T) {
	if ps, err := parseChaosPlan(""); err != nil || ps != nil {
		t.Fatalf("empty: %v %v", ps, err)
	}
	ps, err := parseChaosPlan("gate")
	if err != nil || ps == nil || ps.ThrottleRate <= 0 {
		t.Fatalf("gate: %+v %v", ps, err)
	}
	ps, err = parseChaosPlan(`{"seed":3,"drop_rate":0.5}`)
	if err != nil || ps.Seed != 3 || ps.DropRate != 0.5 {
		t.Fatalf("json: %+v %v", ps, err)
	}
	if _, err := parseChaosPlan("{nope"); err == nil {
		t.Fatal("garbage plan accepted")
	}
}
