package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// withSignals arms SIGINT/SIGTERM handling for interruptible commands:
// the first signal cancels the returned context — the command winds
// down and prints its partial results (best-so-far for tune, the
// summary so far for fuzz) — and a second signal hard-exits non-zero
// for runners that ignore the context. The returned stop func releases
// the handler.
func withSignals(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "patty: %v — stopping, partial results follow (signal again to hard-exit)\n", sig)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
			return
		}
		<-ch
		fmt.Fprintln(os.Stderr, "patty: second signal, hard exit")
		os.Exit(130)
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}
