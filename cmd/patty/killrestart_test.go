package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"patty/internal/checkpoint"
	"patty/internal/tuning"
)

// cliMainEnv re-executes this test binary as the patty CLI: TestMain
// dispatches to main() when the variable is set, so the kill-and-
// restart harness can SIGKILL a real patty process mid-search.
const cliMainEnv = "PATTY_CLI_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(cliMainEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// cliCommand builds an exec.Cmd running this binary as the CLI.
func cliCommand(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), cliMainEnv+"=1")
	return cmd
}

// waitForEvals polls the snapshot at path until it records at least k
// completed evaluations (checkpoint.Save renames atomically, so a
// concurrent reader always sees a complete snapshot or none).
func waitForEvals(t *testing.T, path string, k int, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		var st tuning.SearchState
		err := checkpoint.Load(path, tuning.CheckpointKind, &st)
		if err == nil && len(st.Evals) >= k {
			return
		}
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("snapshot poll: %v", err)
		}
		if time.Now().After(stop) {
			t.Fatalf("snapshot never reached %d evals", k)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTuneKillRestartConverges is the ISSUE's kill-and-restart
// harness: a checkpointed `patty tune` process is SIGKILLed mid-
// search; the resumed search must converge to the identical best
// configuration as an uninterrupted run, with no fewer explored
// configurations, without re-measuring the completed prefix.
func TestTuneKillRestartConverges(t *testing.T) {
	for _, algo := range []string{"linear", "tabu"} {
		t.Run(algo, func(t *testing.T) {
			spec := tuneSpec{Algo: algo, Budget: 120, FaultRate: 10, FaultSeed: 3}

			// Uninterrupted reference, in-process, no checkpoint.
			ref, err := runTune(context.Background(), spec)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Leg 1: a real CLI process, slowed so the SIGKILL lands
			// mid-search, killed after >= 5 journaled evaluations.
			ckpt := filepath.Join(t.TempDir(), "search.ckpt")
			child := cliCommand("tune", "-algo", algo, "-budget", "120",
				"-fault-rate", "10", "-fault-seed", "3",
				"-checkpoint", ckpt, "-eval-delay", "30")
			var childOut bytes.Buffer
			child.Stdout, child.Stderr = &childOut, &childOut
			if err := child.Start(); err != nil {
				t.Fatal(err)
			}
			waitForEvals(t, ckpt, 5, 30*time.Second)
			if err := child.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
				t.Fatal(err)
			}
			child.Wait()

			// Leg 2: resume in-process from the killed run's snapshot.
			spec.Checkpoint = ckpt
			res, err := runTune(context.Background(), spec)
			if err != nil {
				t.Fatalf("resumed run: %v\nchild output:\n%s", err, childOut.String())
			}
			if res.Resumed < 5 {
				t.Fatalf("resume replayed %d evals, want >= 5", res.Resumed)
			}
			if tuning.AssignKey(res.Best) != tuning.AssignKey(ref.Best) || res.Cost != ref.Cost {
				t.Fatalf("resumed best %v (%.0f) != uninterrupted best %v (%.0f)",
					res.Best, res.Cost, ref.Best, ref.Cost)
			}
			if res.Explored < ref.Evaluations {
				t.Fatalf("resumed run explored %d configs, uninterrupted evaluated %d",
					res.Explored, ref.Evaluations)
			}
			// The breaker's quarantine survives the kill too.
			if len(ref.Quarantined) > 0 && len(res.Quarantined) == 0 {
				t.Fatalf("quarantine set lost across restart (reference had %v)", ref.Quarantined)
			}
		})
	}
}

// startServe launches `patty serve` as a child process and returns its
// base URL (parsed from the one-line stdout banner).
func startServe(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := cliCommand(append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			url := "http://" + strings.TrimSpace(line[i+len("listening on http://"):])
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, url
		}
	}
	cmd.Process.Kill()
	t.Fatal("serve never printed its listen address")
	return nil, ""
}

func postJob(t *testing.T, base string, body string) (string, int) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.ID, resp.StatusCode
}

// TestServeChaosKillRestart is the `make chaos` scenario: a tune job
// submitted to `patty serve` is SIGKILLed (the whole process) mid-
// search; a restarted server with the same checkpoint directory
// resumes the resubmitted job from the snapshot and finishes with the
// same best configuration as an uninterrupted run, and a SIGTERM
// drains the restarted server cleanly (exit 0).
func TestServeChaosKillRestart(t *testing.T) {
	ckptDir := t.TempDir()
	spec := tuneSpec{Algo: "tabu", Budget: 120, FaultRate: 10, FaultSeed: 3}
	ref, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	const jobBody = `{"kind":"tune","algo":"tabu","budget":120,"fault_rate":10,"fault_seed":3,"eval_delay_ms":30}`
	srv1, base1 := startServe(t, "-workers", "1", "-checkpoint-dir", ckptDir)
	if _, code := postJob(t, base1, jobBody); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	ckpt := filepath.Join(ckptDir, "tune-tabu-b120-c8.ckpt")
	waitForEvals(t, ckpt, 3, 30*time.Second)
	if err := srv1.Process.Kill(); err != nil { // kill -9 mid-search
		t.Fatal(err)
	}
	srv1.Wait()

	// Restart with the same checkpoint dir; the resubmitted job (no
	// eval delay this time) must resume, not start over.
	srv2, base2 := startServe(t, "-workers", "1", "-checkpoint-dir", ckptDir,
		"-drain-timeout", "20s")
	id, code := postJob(t, base2, `{"kind":"tune","algo":"tabu","budget":120,"fault_rate":10,"fault_seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=1", base2, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rresp, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", base2, id))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Info   struct{ Status string }
		Result tuneOutcome
	}
	if err := json.NewDecoder(rresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if got.Info.Status != "done" {
		t.Fatalf("resumed job status %q", got.Info.Status)
	}
	if got.Result.Resumed < 3 {
		t.Fatalf("resumed job replayed %d evals, want >= 3", got.Result.Resumed)
	}
	if tuning.AssignKey(got.Result.Best) != tuning.AssignKey(ref.Best) || got.Result.Cost != ref.Cost {
		t.Fatalf("resumed best %v (%.0f) != uninterrupted best %v (%.0f)",
			got.Result.Best, got.Result.Cost, ref.Best, ref.Cost)
	}
	if got.Result.Explored < ref.Evaluations {
		t.Fatalf("resumed job explored %d configs, uninterrupted evaluated %d",
			got.Result.Explored, ref.Evaluations)
	}

	// Health endpoints answer while idle; SIGTERM drains cleanly.
	for _, ep := range []string{"/healthz", "/readyz", "/statusz", "/metricz"} {
		r, err := http.Get(base2 + ep)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("%s: %v (%v)", ep, err, r)
		}
		r.Body.Close()
	}
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Wait(); err != nil {
		t.Fatalf("SIGTERM drain must exit 0, got %v", err)
	}
}

// TestCmdFuzzCheckpointResume: a fuzz sweep killed mid-run (first
// SIGINT semantics, here via context) resumes from its journal and
// reports the full-sweep summary.
func TestCmdFuzzCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fuzz.ckpt")
	// Leg 1: a real CLI process interrupted by SIGINT mid-sweep.
	child := cliCommand("fuzz", "-seed", "5", "-n", "25", "-sched-every", "0",
		"-configs", "1", "-checkpoint", ckpt)
	var out bytes.Buffer
	child.Stdout, child.Stderr = &out, &out
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	child.Process.Signal(syscall.SIGINT)
	child.Wait() // exit status may be non-zero (interrupted); the journal matters

	// Leg 2: resume in-process and finish the sweep.
	res, err := capture(t, func() error {
		return cmdFuzz(context.Background(), []string{"-seed", "5", "-n", "25",
			"-sched-every", "0", "-configs", "1", "-checkpoint", ckpt})
	})
	if err != nil {
		t.Fatalf("resumed fuzz: %v\n%s\nchild:\n%s", err, res, out.String())
	}
	if !strings.Contains(res, "checked 25 programs") {
		t.Fatalf("resumed sweep summary:\n%s", res)
	}
}
