package main

import (
	"fmt"

	"patty/internal/obs"
	"patty/internal/parrt"
)

// metrics is the process-wide collector: the eval runtime probe
// records into it, and -debug-addr publishes it at /debug/vars so a
// long-running eval can be inspected live.
var metrics = obs.New()

// probeWork burns a deterministic amount of CPU proportional to cost;
// real compute (not sleep) so stage utilizations reflect actual
// service time.
func probeWork(cost int) int {
	acc := 1
	for i := 0; i < cost*500; i++ {
		acc = acc*31 + i
	}
	return acc
}

// probeFn is the runtime probe; a seam so tests can stand in a
// faulting implementation.
var probeFn = runtimeProbe

// probeSafe guards the runtime probe: a pattern runtime that crashes
// mid-probe surfaces as a one-line diagnostic (and a non-zero exit)
// instead of a raw panic trace.
func probeSafe(c *obs.Collector) (analyses []obs.PatternAnalysis, err error) {
	defer func() {
		if r := recover(); r != nil {
			analyses, err = nil, fmt.Errorf("runtime fault: %v", r)
		}
	}()
	return probeFn(c), nil
}

// runtimeProbe executes one small instrumented workload per pattern
// runtime — a deliberately imbalanced pipeline, a master/worker pool
// with skewed task sizes, and a data-parallel loop — and returns the
// per-pattern analyses for the bottleneck table. This is the
// operation-mode-3 counterpart of the detection-quality study: it
// shows what the runtime itself measures once patterns execute.
func runtimeProbe(c *obs.Collector) []obs.PatternAnalysis {
	type frame struct{ v int }
	pipe := parrt.NewPipeline("probe-video", parrt.NewParams(),
		parrt.Stage[frame]{Name: "crop", Replicable: true, Fn: func(f *frame) { f.v += probeWork(1) }},
		parrt.Stage[frame]{Name: "oil", Replicable: true, Fn: func(f *frame) { f.v += probeWork(8) }},
		parrt.Stage[frame]{Name: "conv", Replicable: true, Fn: func(f *frame) { f.v += probeWork(1) }},
	).Instrument(c)
	frames := make([]*frame, 128)
	for i := range frames {
		frames[i] = &frame{v: i}
	}
	pipe.Process(frames)

	mw := parrt.NewMasterWorker("probe-hash", parrt.NewParams(), 4, func(n int) int {
		return probeWork(n%9 + 1)
	}).Instrument(c)
	tasks := make([]int, 96)
	for i := range tasks {
		tasks[i] = i
	}
	mw.Process(tasks)

	pf := parrt.NewParallelFor("probe-scale", parrt.NewParams(), 4).Instrument(c)
	pf.For(512, func(i int) { probeWork(1) })

	return obs.Analyze(c.Snapshot())
}
