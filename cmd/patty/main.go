// Command patty is the CLI front-end of the pattern-based
// parallelization tool: the reproduction's stand-in for the paper's
// Visual Studio plugin. Each subcommand corresponds to a piece of the
// process model or of the evaluation:
//
//	detect     phases 1-2: report parallelization candidates
//	run        phases 1-4: write annotated sources, parallel code,
//	           tuning configuration
//	transform  operation mode 2: compile hand-written //tadl: directives
//	verify     operation mode 4: run generated parallel unit tests on
//	           the CHESS-style explorer
//	tune       auto-tuning cycle demo on the performance model
//	study      regenerate the user-study tables (paper §4)
//	eval       corpus precision/recall (paper §5)
//	corpus     list the benchmark corpus
//	sweep      performance-model sweeps (cores / replication / length)
//	fuzz       differential fuzzing of the whole pipeline against the
//	           sequential oracle (generated programs, shrunk repros)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves /debug/pprof/
	"os"
	"path/filepath"
	"strings"

	"patty"
	"patty/internal/baseline"
	"patty/internal/cfg"
	"patty/internal/corpus"
	"patty/internal/pattern"
	"patty/internal/perfmodel"
	"patty/internal/report"
	"patty/internal/sched"
	"patty/internal/study"
)

func main() {
	global := flag.NewFlagSet("patty", flag.ExitOnError)
	global.Usage = usage
	debugAddr := global.String("debug-addr", "",
		"serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. :6060")
	global.Parse(os.Args[1:])
	if len(global.Args()) < 1 {
		usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		startDebugServer(*debugAddr)
	}
	cmd, args := global.Args()[0], global.Args()[1:]
	var err error
	switch cmd {
	case "detect":
		err = cmdDetect(args)
	case "run":
		err = cmdRun(args)
	case "transform":
		err = cmdTransform(args)
	case "verify":
		err = cmdVerify(args)
	case "tune":
		err = interruptible(cmdTune, args)
	case "study":
		err = interruptible(cmdStudy, args)
	case "eval":
		err = interruptible(cmdEval, args)
	case "corpus":
		err = cmdCorpus(args)
	case "sweep":
		err = cmdSweep(args)
	case "model":
		err = cmdModel(args)
	case "fuzz":
		err = interruptible(cmdFuzz, args)
	case "serve":
		err = interruptible(cmdServe, args)
	case "worker":
		err = interruptible(cmdWorker, args)
	case "cache":
		err = cmdCache(args)
	case "fleetbench":
		err = interruptible(cmdFleetbench, args)
	case "servebench":
		err = interruptible(cmdServebench, args)
	case "interpbench":
		err = interruptible(cmdInterpbench, args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "patty: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "patty %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// interruptible runs a context-aware subcommand under the two-strike
// signal protocol (see withSignals).
func interruptible(cmd func(context.Context, []string) error, args []string) error {
	ctx, stop := withSignals(context.Background())
	defer stop()
	return cmd(ctx, args)
}

// startDebugServer exposes the live metrics collector and the
// standard Go diagnostics over HTTP: expvar at /debug/vars (including
// the "patty.metrics" snapshot) and pprof at /debug/pprof/. Opt-in
// via -debug-addr; intended for watching long eval or tuning runs.
func startDebugServer(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		// Diagnostics are opt-in and best-effort: warn, don't abort
		// the actual command.
		fmt.Fprintf(os.Stderr, "patty: -debug-addr %s: %v (continuing without debug endpoints)\n", addr, err)
		return
	}
	metrics.PublishExpvar("patty.metrics")
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "patty: debug server on %s: %v\n", addr, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "patty: debug endpoints on http://%s/debug/vars and /debug/pprof/\n", ln.Addr())
}

func usage() {
	fmt.Println(`usage: patty [-debug-addr :6060] <command> [flags]

commands:
  detect    [-corpus name | files...]   report parallelization candidates
  run       [-o dir] [files...]         full process: annotate + transform + tuning file
  transform [-o dir] files...           compile hand-written //tadl: directives
  verify    [-corpus name | files...]   run generated parallel unit tests (CHESS-style)
  tune      [-algo linear|nelder-mead|tabu|random] [-budget n]
            [-checkpoint f.ckpt] [-fault-rate p] [-eval-delay ms]
            [-workers url1,url2,...] [-cache-dir dir]
            auto-tuning; with -checkpoint a killed run resumes where it
            stopped, faulting configs are quarantined by a breaker;
            with -workers the search is sharded across patty worker
            processes and merged to the identical result; with
            -cache-dir measured configs persist in a content-addressed
            store and later runs answer from it
  study     [-seed n] [-measured] [-checkpoint f.ckpt]
            regenerate the user-study tables
  eval      [-static] [-engine auto|tree|vm]
            corpus precision/recall vs baselines
  corpus                                list benchmark programs
  model     [-corpus name | files...] [-dot cfg|callgraph|stages] [-fn name]
  sweep     [-kind cores|replication|length]
  fuzz      [-seed n] [-n m] [-shrink] [-faults] [-check-seed s]
            [-checkpoint f.ckpt] [-engine auto|tree|vm]
            differential fuzzing: generated programs through
            detect -> transform -> execute vs the sequential oracle
            (-faults adds deterministic fault-injection legs)
  serve     [-addr host:port] [-workers n] [-queue n] [-job-timeout d]
            [-drain-timeout d] [-checkpoint-dir dir] [-store-dir dir]
            [-tenant-rate r] [-tenant-burst n]
            supervised job service over HTTP: submit tune/fuzz/study
            jobs, admission control with load shedding, graceful drain;
            a tune job with a "workers" list runs as a fleet search;
            with -store-dir the job ledger survives a kill (WAL +
            snapshot) and tenants get fair-share dispatch with
            per-tenant quotas (429) distinct from overload sheds (503);
            with -cache-dir resubmitted deterministic jobs (matched by
            canonical program hash + spec) answer from the evaluation
            store without re-running, across tenants and restarts
  worker    [-addr host:port] [-workers n] [-queue n] [-cache-dir dir]
            [-cache-max-bytes n] [-drain-timeout d]
            fleet worker: evaluates tuning shards leased by a
            coordinator (patty tune -workers ...); with -cache-dir
            every measurement lands in the shared content-addressed
            store, so a restarted worker answers instead of re-running
  cache     -dir d [stats|verify|gc] [-max-bytes n]
            operate on a content-addressed evaluation store: print its
            stats, run a read-only integrity scan (non-zero exit on
            damage), or compact away superseded and quarantined data
  fleetbench [-counts 1,2,4] [-eval-delay ms] [-o BENCH_fleet.json]
            wall-clock baseline of the distributed search vs the local
            reference, with the determinism check inline
  servebench [-duration d] [-clients n] [-hog-factor k] [-tenant-rate r]
            [-smoke] [-o BENCH_serve.json]
            multi-tenant load harness for patty serve: one hog tenant
            at k-times the others' concurrency; records per-tenant
            latency percentiles, goodput and 429/503 counts, and fails
            if max/min goodput exceeds the fairness gate
  interpbench [-passes n] [-fuzz-n m] [-min-speedup x] [-o BENCH_interp.json]
            bytecode VM vs tree-walker throughput on the corpus; fails
            unless the VM reaches the -min-speedup gate

tune, study, eval, fuzz, serve and worker stop cleanly on the first
SIGINT or SIGTERM (printing partial results); a second signal
hard-exits.`)
}

// loadSources reads files or a corpus program.
func loadSources(corpusName string, files []string) (map[string]string, *patty.Workload, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, nil, fmt.Errorf("unknown corpus program %q (try: patty corpus)", corpusName)
		}
		w := p.Workload()
		return map[string]string{p.Name + ".go": p.Source}, &w, nil
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no input files")
	}
	srcs := make(map[string]string)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, nil, err
		}
		srcs[f] = string(data)
	}
	return srcs, nil, nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	corpusName := fs.String("corpus", "", "analyze a corpus benchmark instead of files")
	staticOnly := fs.Bool("static", false, "skip the dynamic analysis")
	fs.Parse(args)
	srcs, workload, err := loadSources(*corpusName, fs.Args())
	if err != nil {
		return err
	}
	if *staticOnly {
		workload = nil
	}
	rep, err := patty.Detect(srcs, workload)
	if err != nil {
		return err
	}
	fmt.Printf("%d candidate(s):\n", len(rep.Candidates))
	for _, c := range rep.Candidates {
		fmt.Printf("  %-14s %-24s %s\n", c.Kind, c.Pos, c.Arch)
		for _, r := range c.Reasons {
			fmt.Printf("      - %s\n", r)
		}
	}
	fmt.Printf("%d rejection(s):\n", len(rep.Rejected))
	for _, r := range rep.Rejected {
		fmt.Printf("  %-24s %s\n", r.Pos, r.Reason)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	outDir := fs.String("o", "patty-out", "output directory")
	corpusName := fs.String("corpus", "", "run on a corpus benchmark")
	fs.Parse(args)
	srcs, workload, err := loadSources(*corpusName, fs.Args())
	if err != nil {
		return err
	}
	p := patty.NewProcess(srcs, patty.Options{
		Workload: workload,
		Log:      func(s string) { fmt.Println(s) },
	})
	arts, err := p.Run()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for name, text := range arts.AnnotatedSources {
		path := filepath.Join(*outDir, "annotated_"+filepath.Base(name))
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	for _, out := range arts.Outputs {
		path := filepath.Join(*outDir, strings.ToLower(out.FuncName)+".go")
		if err := os.WriteFile(path, []byte(out.Code), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	tpath := filepath.Join(*outDir, "tuning.json")
	if err := arts.TuningConfig.Save(tpath); err != nil {
		return err
	}
	fmt.Println("wrote", tpath)
	return nil
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	outDir := fs.String("o", "patty-out", "output directory")
	fs.Parse(args)
	srcs, _, err := loadSources("", fs.Args())
	if err != nil {
		return err
	}
	arts, err := patty.TransformAnnotated(srcs)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, out := range arts.Outputs {
		path := filepath.Join(*outDir, strings.ToLower(out.FuncName)+".go")
		if err := os.WriteFile(path, []byte(out.Code), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	corpusName := fs.String("corpus", "", "verify a corpus benchmark")
	bound := fs.Int("bound", 2, "preemption bound (-1: exhaustive)")
	maxSched := fs.Int("max-schedules", 5000, "schedule budget per test")
	fs.Parse(args)
	srcs, workload, err := loadSources(*corpusName, fs.Args())
	if err != nil {
		return err
	}
	p := patty.NewProcess(srcs, patty.Options{Workload: workload})
	if _, err := p.Run(); err != nil {
		return err
	}
	results, err := p.Validate(sched.Options{PreemptionBound: *bound, MaxSchedules: *maxSched})
	if err != nil {
		return err
	}
	buggy := 0
	for _, r := range results {
		status := "OK"
		if r.Result.Buggy() {
			status = "BUGGY"
			buggy++
		}
		fmt.Printf("%-6s %-40s %d schedules, %d races, %d deadlocks, %d failures\n",
			status, r.Test.Name, r.Result.Schedules,
			len(r.Result.Races), len(r.Result.Deadlocks), len(r.Result.Failures))
		for _, race := range r.Result.Races {
			fmt.Printf("       race: %s\n", race)
		}
	}
	if buggy > 0 {
		return fmt.Errorf("%d test(s) found bugs", buggy)
	}
	return nil
}

// newFlagSet is the shared flag-set constructor of the subcommands.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

func cmdStudy(ctx context.Context, args []string) error {
	fs := newFlagSet("study")
	seed := fs.Int64("seed", study.DefaultSeed, "simulation seed")
	measured := fs.Bool("measured", false, "recompute the tool outcome with the live detector (slow)")
	ckpt := fs.String("checkpoint", "", "cache the measured outcome in this snapshot file")
	fs.Parse(args)
	outcome := study.PaperOutcome()
	if *measured {
		var err error
		if *ckpt != "" {
			var resumed bool
			outcome, resumed, err = study.MeasuredOutcomeCached(*ckpt)
			if err == nil && resumed {
				fmt.Printf("measured tool outcome restored from %s\n", *ckpt)
			}
		} else {
			outcome, err = study.MeasuredOutcome()
		}
		if err != nil {
			return err
		}
		fmt.Printf("measured tool outcome on raytrace: %+v\n\n", outcome)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	res := study.Run(*seed, outcome)
	fmt.Print(res.FormatAll())
	return nil
}

func cmdEval(ctx context.Context, args []string) error {
	fs := newFlagSet("eval")
	staticOnly := fs.Bool("static", false, "evaluate without dynamic analysis")
	noObs := fs.Bool("no-obs", false, "skip the runtime observability probe")
	engineFlag := fs.String("engine", "auto", "interpreter engine for dynamic analysis: auto | tree | vm")
	fs.Parse(args)
	if err := setDefaultEngine(*engineFlag); err != nil {
		return err
	}
	dets := []baseline.Detector{
		baseline.Patty{},
		baseline.HotspotProfiler{},
		baseline.StaticConservative{},
	}
	if *staticOnly {
		dets[0] = baseline.Patty{Options: pattern.Options{StaticOnly: true}}
	}
	scores, err := corpus.EvaluateCtx(ctx, dets, corpus.All(), !*staticOnly)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d programs, %d LoC (paper §5 detection-quality study)\n\n",
		len(corpus.All()), corpus.TotalLoC())
	fmt.Printf("%-22s %4s %4s %4s %10s %8s %8s\n", "detector", "TP", "FP", "FN", "precision", "recall", "F1")
	for _, s := range scores {
		fmt.Printf("%-22s %4d %4d %4d %10.2f %8.2f %8.2f\n",
			s.Detector, s.TP, s.FP, s.FN, s.Precision, s.Recall, s.F1)
	}
	if !*noObs {
		analyses, err := probeSafe(metrics)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.BottleneckTable(analyses))
	}
	return nil
}

func cmdCorpus(args []string) error {
	fmt.Printf("%-14s %5s %4s  %s\n", "program", "LoC", "GT", "description")
	for _, p := range corpus.All() {
		fmt.Printf("%-14s %5d %4d  %s\n", p.Name, p.LoC(), len(p.Truth), p.Description)
	}
	fmt.Printf("total: %d programs, %d LoC\n", len(corpus.All()), corpus.TotalLoC())
	return nil
}

func cmdModel(args []string) error {
	fs := flag.NewFlagSet("model", flag.ExitOnError)
	corpusName := fs.String("corpus", "", "analyze a corpus benchmark")
	dot := fs.String("dot", "", "emit Graphviz DOT: cfg | callgraph | stages")
	fnName := fs.String("fn", "", "function for -dot cfg")
	staticOnly := fs.Bool("static", false, "skip the dynamic analysis")
	fs.Parse(args)
	srcs, workload, err := loadSources(*corpusName, fs.Args())
	if err != nil {
		return err
	}
	if *staticOnly {
		workload = nil
	}
	proc := patty.NewProcess(srcs, patty.Options{Workload: workload})
	if err := proc.CreateModel(); err != nil {
		return err
	}
	if err := proc.AnalyzePatterns(); err != nil {
		return err
	}
	arts := proc.Artifacts()
	switch *dot {
	case "":
		fmt.Println(report.ModelSummary(arts.Model))
		fmt.Println()
		fmt.Print(report.DetectionReport(proc.Program(), arts.Report))
	case "cfg":
		fn := proc.Program().Func(*fnName)
		if fn == nil {
			return fmt.Errorf("-dot cfg needs -fn <name> (have: %v)", proc.Program().FuncNames())
		}
		fmt.Print(report.CFGDot(cfg.Build(fn)))
	case "callgraph":
		fmt.Print(report.CallGraphDot(arts.Model))
	case "stages":
		for _, c := range arts.Report.Candidates {
			if c.Kind == pattern.PipelineKind {
				fmt.Print(report.StageGraphDot(c))
				return nil
			}
		}
		return fmt.Errorf("no pipeline candidate")
	default:
		return fmt.Errorf("unknown -dot kind %q", *dot)
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	kind := fs.String("kind", "cores", "cores | replication | length")
	fs.Parse(args)
	stages := []perfmodel.Stage{
		{Name: "crop", Time: 200, Replicable: true},
		{Name: "histo", Time: 240, Replicable: true},
		{Name: "oil", Time: 1600, Jitter: 300, Replicable: true},
		{Name: "conv", Time: 180, Replicable: true},
		{Name: "add", Time: 60},
	}
	base := perfmodel.Config{Cores: 8, Items: 256, Replication: []int{1, 1, 4, 1, 1}}
	switch *kind {
	case "cores":
		fmt.Println(perfmodel.FormatPoints("speedup vs cores",
			perfmodel.CoreSweep(stages, base, []int{1, 2, 4, 8, 16, 32})))
	case "replication":
		fmt.Println(perfmodel.FormatPoints("speedup vs oil replication",
			perfmodel.ReplicationSweep(stages, base, 2, []int{1, 2, 3, 4, 6, 8})))
	case "length":
		fmt.Println(perfmodel.FormatPoints("speedup vs stream length",
			perfmodel.StreamLengthSweep(stages, base, []int{1, 2, 4, 8, 16, 64, 256, 1024})))
	default:
		return fmt.Errorf("unknown sweep kind %q", *kind)
	}
	return nil
}
