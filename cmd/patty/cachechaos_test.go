package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"patty/internal/jobs"
	"patty/internal/obs"
	"patty/internal/ptest"
	"patty/internal/tuning"
)

// waitJobDone polls a job to its terminal state and fails the test if
// that state is not done.
func waitJobDone(t *testing.T, base, id string) jobs.Info {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=1", base, id))
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.Status != jobs.StatusDone {
		t.Fatalf("job %s: %+v", id, info)
	}
	return info
}

// jobResultRaw fetches a finished job's result as its raw JSON bytes.
func jobResultRaw(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", base, id))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return got.Result
}

// TestServeCacheChaosKillRestart is the `make cachechaos` gate: a
// serving process with a content-addressed evaluation store is
// SIGKILLed mid-insert — duplicate jobs from two tenants streaming
// through the memoization path while a slowed tune search journals
// evaluations into the same store. The restarted server must recover
// the store (torn tail and all), answer a third tenant's duplicate job
// from it byte-identically, and converge the resubmitted search to the
// same best as an uninterrupted cache-free run.
func TestServeCacheChaosKillRestart(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	cacheDir := filepath.Join(t.TempDir(), "cas")
	ckptDir := t.TempDir()

	// Uninterrupted, cache-free reference for the search.
	spec := tuneSpec{Algo: "tabu", Budget: 120, FaultRate: 10, FaultSeed: 3}
	ref, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	srv1, base1 := startServe(t, "-workers", "2",
		"-checkpoint-dir", ckptDir, "-cache-dir", cacheDir)

	// Seed the store with one finished job and keep its answer: the
	// post-restart duplicate must reproduce these exact bytes.
	seedID, code := postJobTenant(t, base1, "alpha", `{"kind":"study","seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("seed study submit: HTTP %d", code)
	}
	waitJobDone(t, base1, seedID)
	want := jobResultRaw(t, base1, seedID)
	if len(want) == 0 {
		t.Fatal("seed study job returned no result")
	}

	// Two tenants resubmitting duplicates in a loop: every iteration
	// either hits the store or races a fresh insert, so the SIGKILL
	// lands mid-insert with high probability.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"kind":"study","seed":%d}`, 7+i%3)
				req, err := http.NewRequest(http.MethodPost, base1+"/jobs", strings.NewReader(body))
				if err != nil {
					return
				}
				req.Header.Set("X-Tenant", tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // server killed mid-request
				}
				resp.Body.Close()
			}
		}(tenant)
	}

	// A slowed search journaling every evaluation into the store; kill
	// once it has measurable progress.
	if _, code := postJobTenant(t, base1, "alpha",
		`{"kind":"tune","algo":"tabu","budget":120,"fault_rate":10,"fault_seed":3,"eval_delay_ms":30}`); code != http.StatusAccepted {
		t.Fatalf("tune submit: HTTP %d", code)
	}
	waitForEvals(t, filepath.Join(ckptDir, "tune-tabu-b120-c8.ckpt"), 3, 30*time.Second)
	if err := srv1.Process.Kill(); err != nil { // SIGKILL mid-insert
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	srv1.Wait()

	// Restart over the same store. Open recovers it — possibly printing
	// a repair banner — before the listen line, so everything below may
	// rely on the recovered state.
	srv2, base2 := startServe(t, "-workers", "2",
		"-checkpoint-dir", ckptDir, "-cache-dir", cacheDir,
		"-drain-timeout", "30s")

	// A third tenant resubmits the seeded job: answered from the store,
	// byte-identical to the pre-kill result, attributed to gamma.
	dupID, code := postJobTenant(t, base2, "gamma", `{"kind":"study","seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("duplicate submit: HTTP %d", code)
	}
	waitJobDone(t, base2, dupID)
	if got := jobResultRaw(t, base2, dupID); string(got) != string(want) {
		t.Fatalf("cached duplicate diverged:\n got %s\nwant %s", got, want)
	}
	mresp, err := http.Get(base2 + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if snap.Counters["cache.hits"] == 0 {
		t.Fatal("restarted server recorded no cache hits")
	}
	if snap.Counters["cache.tenant.gamma.hits"] == 0 {
		t.Fatal("gamma's duplicate was not attributed as a tenant hit")
	}

	// The resubmitted search (no delay) converges to the reference best
	// — checkpoint resume plus store hits, never a wrong answer.
	tuneID, code := postJobTenant(t, base2, "beta",
		`{"kind":"tune","algo":"tabu","budget":120,"fault_rate":10,"fault_seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("tune resubmit: HTTP %d", code)
	}
	waitJobDone(t, base2, tuneID)
	var out tuneOutcome
	if err := json.Unmarshal(jobResultRaw(t, base2, tuneID), &out); err != nil {
		t.Fatal(err)
	}
	if tuning.AssignKey(out.Best) != tuning.AssignKey(ref.Best) || out.Cost != ref.Cost {
		t.Fatalf("post-restart best %v (%.0f) != reference %v (%.0f)",
			out.Best, out.Cost, ref.Best, ref.Cost)
	}

	// The cache digest renders on the human surface.
	sresp, err := http.Get(base2 + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	status, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(status), "evaluation cache") {
		t.Fatalf("/statusz lacks the cache digest:\n%s", status)
	}

	// SIGTERM drains the restarted server cleanly.
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Wait(); err != nil {
		t.Fatalf("SIGTERM drain must exit 0, got %v", err)
	}
}
