package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"patty/internal/jobs"
	"patty/internal/ptest"
)

// startWorkerProc launches `patty worker` as a real child process (via
// the PATTY_CLI_MAIN re-exec) and returns its base URL from the stdout
// banner. The caller kills it; a cleanup reaps it either way.
func startWorkerProc(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := cliCommand(append([]string{"worker", "-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			url := "http://" + strings.TrimSpace(line[i+len("listening on http://"):])
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, url
		}
	}
	cmd.Process.Kill()
	t.Fatal("worker never printed its listen address")
	return nil, ""
}

// TestFleetTuneMatchesLocal is the CLI half of the determinism
// guarantee: `patty tune -workers ...` at 1, 2 and 4 workers produces
// the identical outcome — best, cost, evaluation count, trace and
// quarantine set — as the plain in-process run, including through the
// fault-injection path the replay breaker has to reproduce.
func TestFleetTuneMatchesLocal(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	for _, algo := range []string{"linear", "tabu"} {
		t.Run(algo, func(t *testing.T) {
			spec := tuneSpec{Algo: algo, Budget: 120, FaultRate: 10, FaultSeed: 3}
			ref, err := runTune(context.Background(), spec)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for _, n := range []int{1, 2, 4} {
				fspec := spec
				fspec.Workers = nil
				var stops []func()
				for i := 0; i < n; i++ {
					url, stop, err := startInprocWorker(2)
					if err != nil {
						t.Fatal(err)
					}
					stops = append(stops, stop)
					fspec.Workers = append(fspec.Workers, url)
				}
				out, err := runFleetTune(context.Background(), fspec)
				for _, stop := range stops {
					stop()
				}
				if err != nil {
					t.Fatalf("%d workers: %v", n, err)
				}
				if !reflect.DeepEqual(out.Best, ref.Best) || out.Cost != ref.Cost ||
					out.Evaluations != ref.Evaluations || !reflect.DeepEqual(out.Trace, ref.Trace) ||
					!reflect.DeepEqual(out.Quarantined, ref.Quarantined) {
					t.Fatalf("%d workers diverged from local:\n got best %v cost %.0f evals %d quarantined %v\nwant best %v cost %.0f evals %d quarantined %v",
						n, out.Best, out.Cost, out.Evaluations, out.Quarantined,
						ref.Best, ref.Cost, ref.Evaluations, ref.Quarantined)
				}
				if out.Fleet == nil || out.Fleet.Workers != n {
					t.Fatalf("%d workers: fleet stats missing or wrong: %+v", n, out.Fleet)
				}
			}
		})
	}
}

// TestFleetKillWorkerMidSearch is the chaos scenario from the ISSUE: a
// coordinator sharding across three real `patty worker` processes loses
// one to SIGKILL mid-search; the lease re-dispatch absorbs the loss and
// the merged result still matches the uninterrupted local reference.
func TestFleetKillWorkerMidSearch(t *testing.T) {
	t.Cleanup(ptest.NoLeaks(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	spec := tuneSpec{Algo: "tabu", Budget: 120, FaultRate: 10, FaultSeed: 3}
	ref, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	var victims []*exec.Cmd
	fspec := spec
	fspec.EvalDelayMs = 25 // stretch the search so the SIGKILL lands mid-shard
	fspec.Checkpoint = filepath.Join(t.TempDir(), "fleet.ckpt")
	for i := 0; i < 3; i++ {
		cmd, url := startWorkerProc(t)
		victims = append(victims, cmd)
		fspec.Workers = append(fspec.Workers, url)
	}

	type result struct {
		out *tuneOutcome
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := runFleetTune(context.Background(), fspec)
		done <- result{out, err}
	}()

	// Wait until the coordinator has journaled a few merged shards, then
	// SIGKILL one worker: no drain, no goodbye, a dead TCP endpoint.
	waitForEvals(t, fspec.Checkpoint, 4, 30*time.Second)
	if err := victims[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victims[0].Wait()

	var r result
	select {
	case r = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet search never finished after losing a worker")
	}
	if r.err != nil {
		t.Fatalf("fleet run: %v", r.err)
	}
	out := r.out
	if !reflect.DeepEqual(out.Best, ref.Best) || out.Cost != ref.Cost || out.Evaluations != ref.Evaluations {
		t.Fatalf("killed-worker run diverged:\n got best %v cost %.0f evals %d\nwant best %v cost %.0f evals %d",
			out.Best, out.Cost, out.Evaluations, ref.Best, ref.Cost, ref.Evaluations)
	}
	if out.Fleet.Redispatched < 1 {
		t.Fatalf("killed worker's lease never re-dispatched: %+v", out.Fleet)
	}
	if out.Fleet.WorkersLost < 1 {
		t.Fatalf("killed worker never benched: %+v", out.Fleet)
	}
}

// TestServeFleetJob: a `patty serve` job whose spec names workers runs
// the distributed path and reports the fleet stats in its result,
// matching the local reference.
func TestServeFleetJob(t *testing.T) {
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	ref, err := runTune(context.Background(), tuneSpec{Algo: "linear", Budget: 60})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	url, stop, err := startInprocWorker(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	_, ts := newTestServer(t, jobs.Options{Workers: 1})

	body := fmt.Sprintf(`{"kind":"tune","algo":"linear","budget":60,"workers":[%q]}`, url)
	id, code := postJob(t, ts.URL, body)
	if code != http.StatusAccepted || id == "" {
		t.Fatalf("submit: HTTP %d id=%q", code, id)
	}
	deadline := time.Now().Add(30 * time.Second)
	var info jobs.Info
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "?wait=1")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if info.Status == jobs.StatusDone || info.Status == jobs.StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet job stuck: %+v", info)
		}
	}
	if info.Status != jobs.StatusDone {
		t.Fatalf("fleet job: %+v", info)
	}
	rr, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res struct{ Result tuneOutcome }
	json.NewDecoder(rr.Body).Decode(&res)
	rr.Body.Close()
	if !reflect.DeepEqual(res.Result.Best, ref.Best) || res.Result.Cost != ref.Cost {
		t.Fatalf("served fleet job diverged: %+v vs %+v", res.Result, ref)
	}
	if res.Result.Fleet == nil || res.Result.Fleet.Workers != 1 {
		t.Fatalf("served fleet job lost its fleet stats: %+v", res.Result)
	}
}

// TestServeIntakeHardening: the job intake now shares the worker's
// hardened decoder — non-JSON content types, oversized bodies and
// malformed JSON are refused before touching the queue.
func TestServeIntakeHardening(t *testing.T) {
	_, ts := newTestServer(t, jobs.Options{Workers: 1})
	post := func(body, ct string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"kind":"tune"}`, "text/plain"); code != http.StatusUnsupportedMediaType {
		t.Fatalf("non-JSON content type: HTTP %d, want 415", code)
	}
	if code := post(`{"kind":`, "application/json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: HTTP %d, want 400", code)
	}
	big := `{"kind":"tune","algo":"` + strings.Repeat("x", 1<<20) + `"}`
	if code := post(big, "application/json"); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", code)
	}
	// A well-formed submit still works after the refusals.
	if _, code := postJob(t, ts.URL, `{"kind":"tune","algo":"linear","budget":20}`); code != http.StatusAccepted {
		t.Fatalf("good submit after refusals: HTTP %d", code)
	}
}
