package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"patty/internal/corpus"
	"patty/internal/evalcache"
	"patty/internal/jobs"
	"patty/internal/obs"
)

// TestRunTuneWarmCacheBitIdentical is the CLI half of the determinism
// gate: a `patty tune -cache-dir` run answered entirely from a warm
// store must produce the bit-identical outcome of the cold run that
// populated it.
func TestRunTuneWarmCacheBitIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cas")
	spec := tuneSpec{Algo: "linear", Budget: 60, Cores: 8, CacheDir: dir}

	before := metrics.Snapshot().Counters["cache.hits"]
	cold, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.Snapshot().Counters["cache.hits"] - before; d != 0 {
		t.Fatalf("cold run hit the cache %d times", d)
	}
	warm, err := runTune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm outcome diverged:\n got %+v\nwant %+v", warm, cold)
	}
	if d := metrics.Snapshot().Counters["cache.hits"] - before; d < int64(cold.Evaluations) {
		t.Fatalf("warm run hit only %d of %d evaluations", d, cold.Evaluations)
	}
}

// TestTuneCacheIdentity pins what the workload address does and does
// not depend on.
func TestTuneCacheIdentity(t *testing.T) {
	base := tuneSpec{Algo: "linear", Budget: 60, Cores: 8, FaultSeed: 3}
	prog, seed := base.cacheIdentity()
	if prog == "" {
		t.Fatal("empty identity")
	}
	if seed != 3 {
		t.Fatalf("seed slot = %d, want FaultSeed 3", seed)
	}

	delayed := base
	delayed.EvalDelayMs = 50
	if p, _ := delayed.cacheIdentity(); p != prog {
		t.Fatal("EvalDelayMs changed the identity; a kill-harness run should warm the plain cache")
	}
	algo := base
	algo.Algo = "tabu" // the algorithm walks the space, it doesn't define costs
	if p, _ := algo.cacheIdentity(); p != prog {
		t.Fatal("Algo changed the workload identity")
	}
	cores := base
	cores.Cores = 4
	if p, _ := cores.cacheIdentity(); p == prog {
		t.Fatal("Cores did not change the identity, but it changes every cost")
	}
	faulty := base
	faulty.FaultRate = 20
	if p, _ := faulty.cacheIdentity(); p == prog {
		t.Fatal("FaultRate did not change the identity, but it changes which configs fault")
	}
}

// TestJobCacheKey pins the serve-level address: semantics in, noise
// out.
func TestJobCacheKey(t *testing.T) {
	req := jobRequest{Kind: "study", Seed: 5, Tenant: "alice"}
	k1, ok := jobCacheKey(req)
	if !ok {
		t.Fatal("study job not cacheable")
	}
	req.Tenant = "bob"
	if k2, _ := jobCacheKey(req); k2 != k1 {
		t.Fatal("tenant leaked into the job address")
	}
	req.Seed = 6
	if k3, _ := jobCacheKey(req); k3 == k1 {
		t.Fatal("seed did not change the job address")
	}
	if _, ok := jobCacheKey(jobRequest{Kind: "bench", SleepMs: 5}); ok {
		t.Fatal("bench jobs must never be memoized")
	}

	// A program travels by canonical hash: reformatting and comments
	// keep the address; a different program changes it.
	src := corpus.All()[0].Source
	a := jobRequest{Kind: "tune", Sources: map[string]string{"p.go": src}}
	b := jobRequest{Kind: "tune", Sources: map[string]string{"p.go": "// resubmitted\n" + src}}
	ka, ok := jobCacheKey(a)
	if !ok {
		t.Fatal("tune job with sources not cacheable")
	}
	kb, _ := jobCacheKey(b)
	if ka != kb {
		t.Fatal("a comment changed the program address")
	}
	c := jobRequest{Kind: "tune", Sources: map[string]string{"p.go": corpus.All()[1].Source}}
	if kc, _ := jobCacheKey(c); kc == ka {
		t.Fatal("distinct programs share an address")
	}
}

// TestServeJobMemoization drives runnerFor the way handleSubmit and
// recovery do: the first run executes and records, the identical
// resubmission — other tenant, other server instance, reopened store —
// answers the recorded bytes without running.
func TestServeJobMemoization(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cas")
	cache, err := evalcache.Open(dir, evalcache.Options{Collector: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	svc := jobs.New(jobs.Options{Workers: 1, QueueDepth: 4})
	defer svc.Close()
	srv := newServer(svc, "")
	srv.cache = cache

	req := jobRequest{Kind: "study", Seed: 5, Tenant: "alice"}
	run, _, err := srv.runnerFor(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Inserts != 1 {
		t.Fatalf("first run recorded %d entries, want 1", st.Inserts)
	}

	// Same job, different tenant: served from the shared store.
	req.Tenant = "bob"
	run, _, err = srv.runnerFor(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err = run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := res.(json.RawMessage)
	if !ok {
		t.Fatalf("cached answer is %T, want json.RawMessage", res)
	}
	if string(raw) != string(want) {
		t.Fatalf("cached bytes differ:\n got %s\nwant %s", raw, want)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new server over a reopened store still answers.
	cache2, err := evalcache.Open(dir, evalcache.Options{Collector: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	srv2 := newServer(svc, "")
	srv2.cache = cache2
	run, _, err = srv2.runnerFor(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err = run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, ok = res.(json.RawMessage)
	if !ok || string(raw) != string(want) {
		t.Fatalf("post-restart answer diverged: %v", res)
	}
}
