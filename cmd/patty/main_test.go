package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"patty/internal/difftest"
	"patty/internal/obs"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestCmdCorpus(t *testing.T) {
	out, err := capture(t, func() error { return cmdCorpus(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"raytrace", "video", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus output missing %q", want)
		}
	}
}

func TestCmdDetectCorpusStatic(t *testing.T) {
	out, err := capture(t, func() error { return cmdDetect([]string{"-corpus", "video", "-static"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pipeline") || !strings.Contains(out, "candidate") {
		t.Errorf("detect output unexpected:\n%s", out)
	}
}

func TestCmdDetectUnknownCorpus(t *testing.T) {
	if _, err := capture(t, func() error { return cmdDetect([]string{"-corpus", "nope"}) }); err == nil {
		t.Fatal("expected error for unknown corpus program")
	}
}

func TestCmdDetectFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	src := `package p
func F(a, b []int) {
	for i := 0; i < len(a); i++ {
		b[i] = a[i] * 2
	}
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return cmdDetect([]string{path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "data-parallel") {
		t.Errorf("detect output:\n%s", out)
	}
}

func TestCmdRunWritesArtifacts(t *testing.T) {
	outDir := t.TempDir()
	_, err := capture(t, func() error {
		return cmdRun([]string{"-corpus", "video", "-o", outDir})
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"annotated_video.go", "processparallel.go", "tuning.json"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing artifact %q in %v", want, names)
		}
	}
	gen, err := os.ReadFile(filepath.Join(outDir, "processparallel.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gen), "parrt.NewPipeline") {
		t.Error("generated file lacks pipeline instantiation")
	}
}

func TestCmdTransformAnnotatedFile(t *testing.T) {
	dir := t.TempDir()
	src := `package p
func double(x int) int { return 2 * x }
func Apply(a, b []int) {
	//tadl:arch forall forall(A)
	for i := 0; i < len(a); i++ {
		//tadl:stage A
		b[i] = double(a[i])
	}
}`
	path := filepath.Join(dir, "apply.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	if _, err := capture(t, func() error { return cmdTransform([]string{"-o", outDir, path}) }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "applyparallel.go")); err != nil {
		t.Fatal("generated file missing")
	}
}

func TestCmdStudy(t *testing.T) {
	out, err := capture(t, func() error { return cmdStudy(context.Background(), []string{"-seed", "4713"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Figure 5b", "Effectivity"} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q", want)
		}
	}
}

func TestCmdTuneAlgorithms(t *testing.T) {
	for _, algo := range []string{"linear", "nelder-mead", "tabu", "random"} {
		out, err := capture(t, func() error { return cmdTune(context.Background(), []string{"-algo", algo, "-budget", "40"}) })
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "best") {
			t.Errorf("%s output:\n%s", algo, out)
		}
	}
	if _, err := capture(t, func() error { return cmdTune(context.Background(), []string{"-algo", "bogus"}) }); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestCmdSweepKinds(t *testing.T) {
	for _, kind := range []string{"cores", "replication", "length"} {
		out, err := capture(t, func() error { return cmdSweep([]string{"-kind", kind}) })
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "speedup") {
			t.Errorf("sweep %s output:\n%s", kind, out)
		}
	}
	if _, err := capture(t, func() error { return cmdSweep([]string{"-kind", "bogus"}) }); err == nil {
		t.Fatal("expected error for unknown sweep kind")
	}
}

func TestCmdModelViews(t *testing.T) {
	out, err := capture(t, func() error { return cmdModel([]string{"-corpus", "video", "-static"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "semantic model") || !strings.Contains(out, "detection report") {
		t.Errorf("model output:\n%s", out)
	}
	out, err = capture(t, func() error {
		return cmdModel([]string{"-corpus", "video", "-static", "-dot", "callgraph"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph callgraph") {
		t.Errorf("callgraph dot:\n%s", out)
	}
	out, err = capture(t, func() error {
		return cmdModel([]string{"-corpus", "video", "-static", "-dot", "cfg", "-fn", "Process"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph \"Process\"") {
		t.Errorf("cfg dot:\n%s", out)
	}
	out, err = capture(t, func() error {
		return cmdModel([]string{"-corpus", "video", "-static", "-dot", "stages"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "StreamGenerator") {
		t.Errorf("stages dot:\n%s", out)
	}
}

func TestCmdVerifyCleanCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full model + exploration")
	}
	out, err := capture(t, func() error {
		return cmdVerify([]string{"-corpus", "video", "-bound", "2", "-max-schedules", "1500"})
	})
	if err != nil {
		t.Fatalf("verify failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "OK") {
		t.Errorf("verify output:\n%s", out)
	}
}

func TestCmdEvalBottleneckTable(t *testing.T) {
	out, err := capture(t, func() error { return cmdEval(context.Background(), []string{"-static"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"precision", // the detection-quality table is still there
		"runtime bottleneck table",
		"probe-video", "pipeline",
		"probe-hash", "masterworker",
		"probe-scale", "parallelfor",
		"oil", // the probe pipeline's expensive stage shows up in the detail
	} {
		if !strings.Contains(out, want) {
			t.Errorf("eval output missing %q", want)
		}
	}
	out, err = capture(t, func() error { return cmdEval(context.Background(), []string{"-static", "-no-obs"}) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "runtime bottleneck table") {
		t.Error("-no-obs must suppress the bottleneck table")
	}
}

func TestRuntimeProbeAnalyses(t *testing.T) {
	analyses := runtimeProbe(metrics)
	if len(analyses) != 3 {
		t.Fatalf("probe produced %d analyses, want 3", len(analyses))
	}
	for _, a := range analyses {
		if a.Items == 0 || a.WallNs == 0 {
			t.Errorf("%s %q: empty analysis %+v", a.Kind, a.Name, a)
		}
	}
}

func TestCmdFuzzClean(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdFuzz(context.Background(), []string{"-seed", "1", "-n", "30", "-sched-every", "15"})
	})
	if err != nil {
		t.Fatalf("fuzz found divergences: %v\n%s", err, out)
	}
	if !strings.Contains(out, "checked 30 programs") || !strings.Contains(out, "0 divergence(s)") {
		t.Errorf("fuzz output:\n%s", out)
	}
}

// TestCmdEvalRuntimeFault: a pattern runtime crashing inside the eval
// probe must surface as a one-line "runtime fault" error (non-zero
// exit through main), never as a raw panic trace.
func TestCmdEvalRuntimeFault(t *testing.T) {
	orig := probeFn
	probeFn = func(*obs.Collector) []obs.PatternAnalysis { panic("stage exploded") }
	defer func() { probeFn = orig }()
	_, err := capture(t, func() error { return cmdEval(context.Background(), []string{"-static"}) })
	if err == nil {
		t.Fatal("faulting probe must make eval fail")
	}
	if msg := err.Error(); !strings.Contains(msg, "runtime fault: stage exploded") || strings.Contains(msg, "\n") {
		t.Errorf("want one-line runtime-fault diagnostic, got %q", msg)
	}
}

// TestCmdFuzzRuntimeFault: same contract for fuzz — a panic escaping
// the differential checker becomes a one-line diagnostic carrying the
// replay seed.
func TestCmdFuzzRuntimeFault(t *testing.T) {
	orig := checkFn
	checkFn = func(p *difftest.Prog, opt difftest.Options) *difftest.Result { panic("worker crashed") }
	defer func() { checkFn = orig }()
	_, err := capture(t, func() error { return cmdFuzz(context.Background(), []string{"-n", "1"}) })
	if err == nil {
		t.Fatal("faulting checker must make fuzz fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "runtime fault: worker crashed") || strings.Contains(msg, "\n") {
		t.Errorf("want one-line runtime-fault diagnostic, got %q", msg)
	}
	if !strings.Contains(msg, "-check-seed") {
		t.Errorf("diagnostic lacks replay seed: %q", msg)
	}
}

// TestCmdFuzzFaultLegs smokes the -faults flag: a small clean sweep
// with the fault-injection legs enabled.
func TestCmdFuzzFaultLegs(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdFuzz(context.Background(), []string{"-seed", "4713", "-n", "15", "-faults", "-sched-every", "0"})
	})
	if err != nil {
		t.Fatalf("fuzz -faults found divergences: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 divergence(s)") {
		t.Errorf("fuzz -faults output:\n%s", out)
	}
}

func TestCmdFuzzCheckSeed(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdFuzz(context.Background(), []string{"-check-seed", "0"})
	})
	if err != nil {
		t.Fatalf("check-seed replay diverged: %v\n%s", err, out)
	}
	if !strings.Contains(out, "seed 0:") || !strings.Contains(out, "no divergence") {
		t.Errorf("check-seed output:\n%s", out)
	}
}
