package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"patty/internal/jobs"
	"patty/internal/obs"
)

// serveBenchTenant is one tenant's slice of the load-test result.
type serveBenchTenant struct {
	Tenant  string `json:"tenant"`
	Clients int    `json:"clients"`
	// Done is the tenant's goodput: jobs submitted, run and observed
	// done by this tenant's closed-loop clients.
	Done     int     `json:"done"`
	Quota429 int     `json:"quota_429"`
	Shed503  int     `json:"shed_503"`
	Goodput  float64 `json:"goodput_per_s"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// serveBench is the BENCH_serve.json artifact: a skewed multi-tenant
// closed-loop load test against `patty serve`, recording per-tenant
// latency percentiles, goodput, refusal counts (quota 429 vs shed 503)
// and the fairness ratio the ISSUE gates on.
type serveBench struct {
	Workers     int     `json:"workers"`
	Queue       int     `json:"queue"`
	DurationMs  float64 `json:"duration_ms"`
	SleepMs     int64   `json:"job_sleep_ms"`
	TenantRate  float64 `json:"tenant_rate_per_s"`
	TenantBurst int     `json:"tenant_burst"`
	HogFactor   int     `json:"hog_factor"`

	Jobs         int                `json:"jobs_done"`
	GoodputPerS  float64            `json:"goodput_per_s"`
	Quota429     int                `json:"quota_429"`
	Shed503      int                `json:"shed_503"`
	Fairness     float64            `json:"fairness_max_min_goodput"`
	FairnessGate float64            `json:"fairness_gate"`
	Tenants      []serveBenchTenant `json:"tenants"`
}

// benchClient is one closed-loop client: submit, wait for the result,
// repeat; on a refusal, back off briefly and retry. It accumulates its
// own stats, merged after the run.
type benchClient struct {
	done      int
	quota429  int
	shed503   int
	latencies []time.Duration
}

// runBenchClient drives one client until the deadline.
func runBenchClient(ctx context.Context, hc *http.Client, base, tenant string, sleepMs int64, rng *rand.Rand) benchClient {
	var st benchClient
	body := fmt.Sprintf(`{"kind":"bench","sleep_ms":%d}`, sleepMs)
	for ctx.Err() == nil {
		t0 := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader([]byte(body)))
		if err != nil {
			return st
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := hc.Do(req)
		if err != nil {
			return st // deadline hit mid-request
		}
		var out struct {
			ID string `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			wreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+out.ID+"?wait=1", nil)
			if err != nil {
				return st
			}
			wresp, err := hc.Do(wreq)
			if err != nil {
				return st
			}
			var info jobs.Info
			json.NewDecoder(wresp.Body).Decode(&info)
			wresp.Body.Close()
			if info.Status == jobs.StatusDone {
				st.done++
				st.latencies = append(st.latencies, time.Since(t0))
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				st.quota429++
			} else {
				st.shed503++
			}
			// The advertised Retry-After is whole seconds — honest for
			// production clients, far too coarse for a seconds-long
			// bench. Back off a short jittered beat instead; the refusal
			// counts are what the artifact records.
			select {
			case <-ctx.Done():
				return st
			case <-time.After(time.Duration(1+rng.Intn(5)) * time.Millisecond):
			}
		default:
			return st
		}
	}
	return st
}

// quantileMs picks a quantile from sorted client-side latencies.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds()) / 1e3
}

// cmdServebench is the serve-layer load harness behind `make
// bench-serve`: an in-process `patty serve` instance under a skewed
// closed-loop tenant mix (one hog offering -hog-factor times the
// others' concurrency at equal weights), proving the fair-share
// dispatcher keeps per-tenant goodput within the gate while the quota
// and shed paths answer 429/503.
func cmdServebench(ctx context.Context, args []string) error {
	fs := newFlagSet("servebench")
	workers := fs.Int("workers", 4, "serve worker-pool size")
	queue := fs.Int("queue", 64, "serve admission-queue bound")
	duration := fs.Duration("duration", 4*time.Second, "load duration")
	sleepMs := fs.Int64("sleep-ms", 5, "per-job simulated work")
	tenants := fs.Int("tenants", 3, "number of well-behaved tenants")
	clients := fs.Int("clients", 3, "closed-loop clients per well-behaved tenant")
	hogFactor := fs.Int("hog-factor", 10, "hog concurrency = hog-factor * clients")
	tenantRate := fs.Float64("tenant-rate", 300, "per-tenant quota in jobs/s (0: unlimited)")
	tenantBurst := fs.Int("tenant-burst", 16, "per-tenant token-bucket burst")
	maxFairness := fs.Float64("max-fairness", 2.0, "fail above this max/min per-tenant goodput (0: no gate)")
	smoke := fs.Bool("smoke", false, "short CI pass: 800ms, small client mix")
	outPath := fs.String("o", "", "also write the JSON artifact to this file")
	dupLeg := fs.Bool("dup", false, "also run the duplicate-resubmission cache leg (see runCacheBench)")
	cacheOut := fs.String("cache-o", "", "write the cache leg's JSON artifact to this file (implies -dup)")
	fs.Parse(args)
	if *smoke {
		*duration = 800 * time.Millisecond
		*clients = 2
		*hogFactor = 5
	}

	// In-process serve instance, isolated collector.
	collector := obs.New()
	svc := jobs.New(jobs.Options{
		Workers:     *workers,
		QueueDepth:  *queue,
		Collector:   collector,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
	})
	srv := newServer(svc, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return err
	}
	hs := &http.Server{Handler: srv.mux()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		hs.Close()
		svc.Close()
	}()

	// Tenant mix: t1..tN at -clients each, plus one hog at
	// hog-factor * clients. Equal weights: fairness must come from the
	// dispatcher, not from configuration.
	type tenantPlan struct {
		name    string
		clients int
	}
	var plan []tenantPlan
	for i := 1; i <= *tenants; i++ {
		plan = append(plan, tenantPlan{fmt.Sprintf("t%d", i), *clients})
	}
	plan = append(plan, tenantPlan{"hog", *hogFactor * *clients})

	lctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	defer hc.CloseIdleConnections()

	var mu sync.Mutex
	merged := make(map[string]*benchClient)
	var wg sync.WaitGroup
	t0 := time.Now()
	for _, tp := range plan {
		merged[tp.name] = &benchClient{}
		for c := 0; c < tp.clients; c++ {
			wg.Add(1)
			go func(tenant string, seed int64) {
				defer wg.Done()
				st := runBenchClient(lctx, hc, base, tenant, *sleepMs, rand.New(rand.NewSource(seed)))
				mu.Lock()
				agg := merged[tenant]
				agg.done += st.done
				agg.quota429 += st.quota429
				agg.shed503 += st.shed503
				agg.latencies = append(agg.latencies, st.latencies...)
				mu.Unlock()
			}(tp.name, int64(len(plan)*100+c))
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)

	bench := serveBench{
		Workers: *workers, Queue: *queue,
		DurationMs: float64(elapsed.Microseconds()) / 1e3,
		SleepMs:    *sleepMs, TenantRate: *tenantRate, TenantBurst: *tenantBurst,
		HogFactor: *hogFactor, FairnessGate: *maxFairness,
	}
	var minDone, maxDone int
	for _, tp := range plan {
		agg := merged[tp.name]
		sort.Slice(agg.latencies, func(i, k int) bool { return agg.latencies[i] < agg.latencies[k] })
		tb := serveBenchTenant{
			Tenant: tp.name, Clients: tp.clients,
			Done: agg.done, Quota429: agg.quota429, Shed503: agg.shed503,
			Goodput: float64(agg.done) / elapsed.Seconds(),
			P50Ms:   quantileMs(agg.latencies, 0.50),
			P95Ms:   quantileMs(agg.latencies, 0.95),
			P99Ms:   quantileMs(agg.latencies, 0.99),
		}
		if n := len(agg.latencies); n > 0 {
			tb.MaxMs = float64(agg.latencies[n-1].Microseconds()) / 1e3
		}
		bench.Tenants = append(bench.Tenants, tb)
		bench.Jobs += agg.done
		bench.Quota429 += agg.quota429
		bench.Shed503 += agg.shed503
		if agg.done > maxDone {
			maxDone = agg.done
		}
		if minDone == 0 || agg.done < minDone {
			minDone = agg.done
		}
		fmt.Printf("%-8s %3d client(s): %5d done (%.0f/s), %d x 429, %d x 503, p50 %.1f ms, p95 %.1f ms\n",
			tp.name, tp.clients, tb.Done, tb.Goodput, tb.Quota429, tb.Shed503, tb.P50Ms, tb.P95Ms)
	}
	bench.GoodputPerS = float64(bench.Jobs) / elapsed.Seconds()
	if minDone > 0 {
		bench.Fairness = float64(maxDone) / float64(minDone)
	}
	fmt.Printf("total: %d jobs in %.0f ms (%.0f/s), fairness max/min = %.2f\n",
		bench.Jobs, bench.DurationMs, bench.GoodputPerS, bench.Fairness)

	// Cross-check the client view against the server's own digest.
	ths := obs.AnalyzeTenants(collector.Snapshot())
	if ratio := obs.FairnessRatio(ths); ratio > 0 {
		fmt.Printf("server-side fairness (obs.AnalyzeTenants): %.2f across %d tenant(s)\n", ratio, len(ths))
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *maxFairness > 0 {
		if bench.Fairness == 0 {
			return fmt.Errorf("fairness unmeasurable: some tenant finished zero jobs")
		}
		if bench.Fairness > *maxFairness {
			return fmt.Errorf("fairness gate failed: max/min goodput %.2f > %.2f", bench.Fairness, *maxFairness)
		}
	}
	if *dupLeg || *cacheOut != "" {
		if err := runCacheBench(ctx, *smoke, *cacheOut); err != nil {
			return err
		}
	}
	return nil
}
