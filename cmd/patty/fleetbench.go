package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"patty/internal/fleet"
	"patty/internal/jobs"
	"patty/internal/obs"
)

// fleetBenchPoint is one worker-count measurement of the fleet
// baseline.
type fleetBenchPoint struct {
	Workers      int     `json:"workers"`
	WallMs       float64 `json:"wall_ms"`
	Speedup      float64 `json:"speedup_vs_local"`
	Merged       int     `json:"merged"`
	Duplicates   int     `json:"duplicates"`
	Stolen       int     `json:"stolen"`
	MatchesLocal bool    `json:"matches_local"`
}

// fleetBench is the BENCH_fleet.json baseline: local-search wall clock
// against the same search sharded across 1, 2 and 4 in-process
// workers, with the determinism check (identical best and cost) inline.
type fleetBench struct {
	Algo        string            `json:"algo"`
	Budget      int               `json:"budget"`
	EvalDelayMs int               `json:"eval_delay_ms"`
	Space       int               `json:"space"`
	LocalWallMs float64           `json:"local_wall_ms"`
	LocalBest   map[string]int    `json:"local_best"`
	LocalCost   float64           `json:"local_cost"`
	Points      []fleetBenchPoint `json:"points"`
}

// startInprocWorker runs a fleet worker inside this process, the way
// the bench and the tests exercise the wire protocol without spawning
// child processes.
func startInprocWorker(pool int) (url string, stop func(), err error) {
	svc := jobs.New(jobs.Options{Workers: pool, QueueDepth: 64})
	wk := fleet.NewWorker(svc, workerObjective, nil, obs.New())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: wk.Mux()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		svc.Close()
	}, nil
}

// cmdFleetbench measures the distributed-tuning baseline behind `make
// bench-fleet`: one local reference run, then the same search at each
// requested worker count, asserting the merged best matches the local
// one. The artificial per-evaluation delay stands in for a real
// objective's measurement cost; without it the HTTP round-trips would
// dominate and every fleet point would lose to the local run.
func cmdFleetbench(ctx context.Context, args []string) error {
	fs := newFlagSet("fleetbench")
	var spec tuneSpec
	fs.StringVar(&spec.Algo, "algo", "linear", "linear | nelder-mead | tabu | random")
	fs.IntVar(&spec.Budget, "budget", 150, "objective evaluations")
	fs.IntVar(&spec.EvalDelayMs, "eval-delay", 10, "milliseconds per fresh evaluation (models real measurement cost)")
	countsFlag := fs.String("counts", "1,2,4", "comma-separated worker counts to benchmark")
	outPath := fs.String("o", "", "also write the JSON baseline to this file")
	fs.Parse(args)

	var counts []int
	for _, s := range strings.Split(*countsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -counts entry %q", s)
		}
		counts = append(counts, n)
	}

	spec = spec.withDefaults()
	dims, start, _ := spec.evalSpec().workload(ctx)
	bench := fleetBench{
		Algo:        spec.Algo,
		Budget:      spec.Budget,
		EvalDelayMs: spec.EvalDelayMs,
		Space:       fleet.SpaceSize(dims, start),
	}

	t0 := time.Now()
	local, err := runTune(ctx, spec)
	if err != nil {
		return err
	}
	bench.LocalWallMs = float64(time.Since(t0).Microseconds()) / 1e3
	bench.LocalBest, bench.LocalCost = local.Best, local.Cost
	fmt.Printf("local: best %v, cost %.0f in %.0f ms\n", local.Best, local.Cost, bench.LocalWallMs)

	for _, n := range counts {
		if err := ctx.Err(); err != nil {
			return err
		}
		var stops []func()
		fspec := spec
		fspec.Workers = nil
		for i := 0; i < n; i++ {
			url, stop, err := startInprocWorker(2)
			if err != nil {
				for _, s := range stops {
					s()
				}
				return err
			}
			stops = append(stops, stop)
			fspec.Workers = append(fspec.Workers, url)
		}
		t0 := time.Now()
		out, err := runFleetTune(ctx, fspec)
		wall := float64(time.Since(t0).Microseconds()) / 1e3
		for _, stop := range stops {
			stop()
		}
		if err != nil {
			return fmt.Errorf("fleet run with %d workers: %w", n, err)
		}
		p := fleetBenchPoint{
			Workers:      n,
			WallMs:       wall,
			Merged:       out.Fleet.Merged,
			Duplicates:   out.Fleet.Duplicates,
			Stolen:       out.Fleet.Stolen,
			MatchesLocal: reflect.DeepEqual(out.Best, local.Best) && out.Cost == local.Cost,
		}
		if wall > 0 {
			p.Speedup = bench.LocalWallMs / wall
		}
		bench.Points = append(bench.Points, p)
		fmt.Printf("fleet %d worker(s): best %v, cost %.0f in %.0f ms (%.2fx vs local, match=%v)\n",
			n, out.Best, out.Cost, wall, p.Speedup, p.MatchesLocal)
		if !p.MatchesLocal {
			return fmt.Errorf("fleet run with %d workers diverged from the local reference", n)
		}
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}
