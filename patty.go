// Package patty is a pattern-based parallelization tool for the
// multicore age — a from-scratch Go reproduction of Molitorisz,
// Müller and Tichy's Patty (PMAM '15).
//
// Patty takes sequential Go source code and produces tunable,
// validated parallel code in four phases (the paper's Fig. 1):
//
//  1. Model Creation: control flow × data dependencies × call graph ×
//     runtime information from an interpreter-based profiler.
//  2. Pattern Analysis: a catalog of source patterns detects pipeline,
//     data-parallel and master/worker opportunities (rules PLPL, PLDD,
//     PLCD, PLDS, PLTP).
//  3. Tunable Architecture: candidates are expressed as TADL
//     annotations at the exact source location.
//  4. Code Transform: annotated regions become instantiations of the
//     tunable parallel runtime library, plus a tuning configuration
//     file and generated parallel unit tests that run on a CHESS-style
//     systematic scheduler.
//
// Quick start:
//
//	arts, err := patty.Parallelize(map[string]string{"main.go": src}, nil)
//	// arts.Report        — detected candidates with TADL expressions
//	// arts.AnnotatedSources — Fig. 3b artifacts
//	// arts.Outputs       — generated parallel Go (Fig. 3d)
//	// arts.TuningConfig  — Fig. 3c artifact
//	// arts.UnitTests     — run them via patty.Validate
//
// The subsystems are exposed for finer-grained use: see
// internal/parrt (runtime library, operation mode 3), internal/tadl
// (annotation language, mode 2), internal/tuning (auto-tuners),
// internal/sched (systematic concurrency testing, mode 4),
// internal/corpus and internal/study (the paper's evaluation).
package patty

import (
	"patty/internal/core"
	"patty/internal/model"
	"patty/internal/pattern"
	"patty/internal/sched"
)

// Options re-exports the process options.
type Options = core.Options

// Artifacts re-exports the per-phase artifacts.
type Artifacts = core.Artifacts

// Process re-exports the process-model driver.
type Process = core.Process

// Workload re-exports the dynamic-analysis workload description.
type Workload = model.Workload

// NewProcess prepares a parallelization run over filename→source
// pairs.
func NewProcess(sources map[string]string, opt Options) *Process {
	return core.NewProcess(sources, opt)
}

// Parallelize runs the full automatic pipeline (operation mode 1).
// workload may be nil (static-only model).
func Parallelize(sources map[string]string, workload *Workload) (*Artifacts, error) {
	return NewProcess(sources, Options{Workload: workload}).Run()
}

// Detect runs phases 1-2 only and returns the detection report.
func Detect(sources map[string]string, workload *Workload) (*pattern.Report, error) {
	p := NewProcess(sources, Options{Workload: workload})
	if err := p.CreateModel(); err != nil {
		return nil, err
	}
	if err := p.AnalyzePatterns(); err != nil {
		return nil, err
	}
	return p.Artifacts().Report, nil
}

// TransformAnnotated compiles hand-written //tadl: directives to
// parallel code (operation mode 2).
func TransformAnnotated(sources map[string]string) (*Artifacts, error) {
	return NewProcess(sources, Options{}).TransformAnnotated()
}

// Validate runs the generated parallel unit tests of a completed
// process under the systematic scheduler (operation mode 4).
func Validate(p *Process) ([]core.ValidationResult, error) {
	return p.Validate(sched.Options{PreemptionBound: 2, MaxSchedules: 5000})
}
