// Quickstart: run Patty's automatic parallelization (operation mode 1)
// over a small sequential program and inspect every artifact of the
// process model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"patty"
)

const src = `package demo

// Brighten scales every sample; iterations are independent.
func Brighten(in, out []int, gain int) {
	for i := 0; i < len(in); i++ {
		out[i] = in[i] * gain
	}
}

// Norm computes a sum of squares; the accumulator is a reduction.
func Norm(in []int) int {
	total := 0
	for i := 0; i < len(in); i++ {
		total += in[i] * in[i]
	}
	return total
}

// Smooth has a genuine loop-carried recurrence and must stay serial.
func Smooth(a []int) {
	for i := 1; i < len(a); i++ {
		a[i] = (a[i-1] + a[i]) / 2
	}
}
`

func main() {
	arts, err := patty.Parallelize(map[string]string{"demo.go": src}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== detected candidates (phase 2) ===")
	for _, c := range arts.Report.Candidates {
		fmt.Printf("%-14s %-14s TADL: %s\n", c.Pos, c.Kind, c.Arch)
	}
	fmt.Println("\n=== rejections ===")
	for _, r := range arts.Report.Rejected {
		fmt.Printf("%-14s %s\n", r.Pos, r.Reason)
	}

	fmt.Println("\n=== annotated source (phase 3, paper Fig. 3b) ===")
	fmt.Println(arts.AnnotatedSources["demo.go"])

	fmt.Println("=== generated parallel code (phase 4, paper Fig. 3d) ===")
	for _, out := range arts.Outputs {
		fmt.Println(out.Code)
	}

	fmt.Println("=== tuning configuration (paper Fig. 3c) ===")
	for _, e := range arts.TuningConfig.Entries {
		fmt.Printf("%-60s = %d  [%d..%d]\n", e.Key, e.Value, e.Min, e.Max)
	}

	fmt.Printf("\n%d parallel unit test(s) generated; run them with patty.Validate\n",
		len(arts.UnitTests))
}
