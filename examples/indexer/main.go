// Indexer demonstrates library-based parallel programming (operation
// mode 3, the paper's low-abstraction level) together with the
// performance-validation loop: a desktop-search index generator built
// directly on the runtime library's patterns, auto-tuned with the
// paper's linear search against a real measured objective.
//
//	go run ./examples/indexer
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"patty/internal/parrt"
	"patty/internal/tuning"
)

// Doc is one document flowing through the indexing pipeline.
type Doc struct {
	ID     int
	Text   string
	tokens []string
}

func synthesize(n int) []*Doc {
	words := []string{"the", "Quick", "brown", "FOX", "jumps", "over", "a", "LAZY", "dog", "again"}
	docs := make([]*Doc, n)
	seed := 7
	for i := range docs {
		var sb strings.Builder
		for k := 0; k < 40; k++ {
			sb.WriteString(words[seed%len(words)])
			sb.WriteByte(' ')
			seed = (seed*5 + 3) % 1009
		}
		docs[i] = &Doc{ID: i, Text: sb.String()}
	}
	return docs
}

// tokenize is the replicable hot stage.
func tokenize(d *Doc) {
	for _, w := range strings.Fields(d.Text) {
		d.tokens = append(d.tokens, strings.ToLower(w))
	}
	// Latency-bound component (I/O-ish), so pipelining pays even on
	// few cores.
	time.Sleep(150 * time.Microsecond)
}

func main() {
	const nDocs = 64
	// Sequential reference.
	ref := make(map[string]int)
	start := time.Now()
	for _, d := range synthesize(nDocs) {
		tokenize(d)
		for _, tok := range d.tokens {
			ref[tok]++
		}
	}
	seqTime := time.Since(start)
	fmt.Printf("sequential indexing: %6.1f ms, %d distinct terms\n",
		float64(seqTime.Microseconds())/1000, len(ref))

	// Mode 3: explicit pipeline via the runtime library. The merge
	// stage is stage-bound (single goroutine), so the shared map needs
	// no lock — the pattern guarantees it.
	ps := parrt.NewParams()
	build := func() (*parrt.Pipeline[Doc], map[string]int) {
		index := make(map[string]int)
		pipe := parrt.NewPipeline("indexer", ps,
			parrt.Stage[Doc]{Name: "tokenize", Replicable: true, MaxReplication: 8, Fn: tokenize},
			parrt.Stage[Doc]{Name: "merge", Replicable: false, Fn: func(d *Doc) {
				for _, tok := range d.tokens {
					index[tok]++
				}
			}},
		)
		return pipe, index
	}

	measure := func() (time.Duration, map[string]int) {
		pipe, index := build()
		docs := synthesize(nDocs)
		start := time.Now()
		pipe.Process(docs)
		return time.Since(start), index
	}

	check := func(index map[string]int) {
		if len(index) != len(ref) {
			log.Fatalf("index mismatch: %d vs %d terms", len(index), len(ref))
		}
		for k, v := range ref {
			if index[k] != v {
				log.Fatalf("count mismatch for %q: %d vs %d", k, index[k], v)
			}
		}
	}

	elapsed, index := measure()
	check(index)
	fmt.Printf("pipeline (untuned):  %6.1f ms (index identical)\n",
		float64(elapsed.Microseconds())/1000)

	// Performance validation: the auto-tuning cycle on the real
	// objective (paper Fig. 4c), using the paper's linear search.
	var dims []tuning.Dim
	for _, d := range tuning.DimsFromParams(ps) {
		for _, key := range []string{"replication", "fuse", "sequentialexecution", "orderpreservation"} {
			if strings.Contains(d.Key, key) {
				dims = append(dims, d)
				break
			}
		}
	}
	objective := func(assign map[string]int) float64 {
		ps.Apply(assign)
		t, idx := measure()
		check(idx)
		return float64(t.Microseconds())
	}
	res := tuning.LinearSearch{}.Tune(dims, ps.Snapshot(), objective, 40)
	ps.Apply(res.Best)
	tuned, idx := measure()
	check(idx)

	fmt.Printf("pipeline (tuned):    %6.1f ms after %d tuning evaluations\n",
		float64(tuned.Microseconds())/1000, res.Evaluations)
	fmt.Println("\nbest configuration:")
	for _, k := range []string{
		"pipeline.indexer.stage.0.replication",
		"pipeline.indexer.stage.0.orderpreservation",
		"pipeline.indexer.fuse.0",
		"pipeline.indexer.sequentialexecution",
		"pipeline.indexer.buffersize",
	} {
		fmt.Printf("  %-46s = %d\n", k, res.Best[k])
	}
	fmt.Printf("\nspeedup vs sequential: %.2fx\n", float64(seqTime)/float64(tuned))
}
