// Videopipeline reproduces the paper's running example end to end
// (experiment E8, Fig. 3 a→d): the AviStream filter chain is detected
// as the pipeline (A || B || C+) => D => E, annotated, transformed,
// validated on the systematic scheduler — and then executed for real
// through the runtime library (operation mode 3) with its tuning
// parameters, comparing tuned configurations.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"
	"time"

	"patty"
	"patty/internal/corpus"
	"patty/internal/obs"
	"patty/internal/parrt"
	"patty/internal/report"
	"patty/internal/sched"
)

// Image is a video frame; the filters below are latency-bound (they
// model I/O-ish stage work), so even a single-core host shows pipeline
// overlap.
type Image struct {
	ID  int
	Lum int
}

func crop(img *Image)  { time.Sleep(2 * time.Millisecond); img.Lum = img.Lum % 65536 }
func histo(img *Image) { time.Sleep(2500 * time.Microsecond); img.Lum += 3 }
func oil(img *Image)   { time.Sleep(10 * time.Millisecond); img.Lum = img.Lum * 31 % 65536 }
func conv(img *Image)  { time.Sleep(2 * time.Millisecond); img.Lum /= 2 }

func sequential(frames []*Image) []int {
	var out []int
	for _, f := range frames {
		crop(f)
		histo(f)
		oil(f)
		conv(f)
		out = append(out, f.Lum)
	}
	return out
}

func frames(n int) []*Image {
	out := make([]*Image, n)
	for i := range out {
		out[i] = &Image{ID: i, Lum: i*37 + 11}
	}
	return out
}

func main() {
	// --- Phase artifacts on the corpus version of the example ---
	prog := corpus.Get("video")
	w := prog.Workload()
	p := patty.NewProcess(map[string]string{"video.go": prog.Source},
		patty.Options{Workload: &w, Log: func(s string) { fmt.Println(s) }})
	arts, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	c := arts.Report.Candidates[0]
	fmt.Printf("\ndetected architecture (Fig. 3b): %s\n", c.Arch)
	fmt.Println("\ngenerated parallel code (Fig. 3d), excerpt:")
	code := arts.Outputs[0].Code
	if len(code) > 1800 {
		code = code[:1800] + "\n\t// ...\n"
	}
	fmt.Println(code)

	// Correctness validation (the CHESS-style step).
	results, err := p.Validate(sched.Options{PreemptionBound: 2, MaxSchedules: 3000})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("unit test %s: %d schedules, buggy=%v\n",
			r.Test.Name, r.Result.Schedules, r.Result.Buggy())
	}

	// --- Operation mode 3: the same pipeline through the library ---
	const n = 48
	want := sequential(frames(n))

	ps := parrt.NewParams()
	metrics := obs.New()
	pipe := parrt.NewPipeline("video", ps,
		parrt.Stage[Image]{Name: "A", Replicable: true, MaxReplication: 8, Fn: crop},
		parrt.Stage[Image]{Name: "B", Replicable: true, MaxReplication: 8, Fn: histo},
		parrt.Stage[Image]{Name: "C", Replicable: true, MaxReplication: 8, Fn: oil},
		parrt.Stage[Image]{Name: "D", Replicable: true, MaxReplication: 8, Fn: conv},
	).Instrument(metrics)

	run := func(label string) time.Duration {
		in := frames(n)
		start := time.Now()
		out := pipe.Process(in)
		elapsed := time.Since(start)
		for i, f := range out {
			if f.Lum != want[i] {
				log.Fatalf("%s: frame %d got %d want %d", label, f.ID, f.Lum, want[i])
			}
		}
		fmt.Printf("%-28s %8.1f ms (results identical to sequential)\n",
			label, float64(elapsed.Microseconds())/1000)
		return elapsed
	}

	fmt.Println("\nruntime-library execution (latency-bound stages):")
	ps.Set("pipeline.video.sequentialexecution", 1)
	seq := run("SequentialExecution=1")
	ps.Set("pipeline.video.sequentialexecution", 0)
	pipelined := run("pipeline, no replication")
	ps.Set("pipeline.video.stage.2.replication", 4)
	metrics.Reset() // bottleneck table below shows the tuned run only
	replicated := run("pipeline, oil replicated x4")

	fmt.Printf("\nspeedup pipeline vs sequential:   %.2fx\n", float64(seq)/float64(pipelined))
	fmt.Printf("speedup with StageReplication:    %.2fx\n", float64(seq)/float64(replicated))

	fmt.Println("\nper-stage runtime distribution (Fig. 4c view):")
	for _, st := range pipe.Stats() {
		fmt.Printf("  %-4s items=%4d busy=%8.1f ms\n", st.Name, st.Items,
			float64(st.Busy.Microseconds())/1000)
	}

	// The observability layer's view of the same runs: which stage
	// bounds throughput, how congested the queues are, what the
	// reorder buffer cost — the feedback the auto-tuner consumes.
	fmt.Println()
	fmt.Print(report.BottleneckTable(obs.Analyze(metrics.Snapshot())))
}
