// Faulttolerant: the parrt runtimes under failure. Three scenarios
// show the fault policies the runtime reads from its tuning
// parameters — the same keys the transformer documents in every
// generated file:
//
//  1. SkipItem: a pipeline stage panics on corrupt frames; the run
//     finishes, delivers every healthy frame, and reports one typed
//     *parrt.ItemError per dropped item.
//
//  2. RetryItem: a flaky worker heals under retries with backoff; the
//     result is indistinguishable from a fault-free run.
//
//  3. Cancellation: a streaming pipeline is canceled mid-run and
//     drains gracefully — goroutines exit, partial results flow out,
//     and the report carries context.Canceled.
//
//     go run ./examples/faulttolerant
package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"patty/internal/parrt"
)

type frame struct {
	id      int
	corrupt bool
	sharp   bool
}

func main() {
	skipItemDemo()
	retryDemo()
	cancelDemo()
}

// skipItemDemo: panic isolation. Every 9th frame is corrupt and makes
// the decode stage panic; policy SkipItem turns each crash into an
// ItemError and the rest of the stream survives.
func skipItemDemo() {
	fmt.Println("=== 1. SkipItem: panic isolation in a pipeline ===")
	ps := parrt.NewParams()
	ps.Set("pipeline.video.faultpolicy", int(parrt.SkipItem))

	pipe := parrt.NewPipeline("video", ps,
		parrt.Stage[frame]{Name: "decode", Replicable: true, Fn: func(f *frame) {
			if f.corrupt {
				panic(fmt.Sprintf("corrupt frame %d", f.id))
			}
		}},
		parrt.Stage[frame]{Name: "sharpen", Replicable: true, Fn: func(f *frame) {
			f.sharp = true
		}},
	)

	frames := make([]*frame, 36)
	for i := range frames {
		frames[i] = &frame{id: i, corrupt: i%9 == 8}
	}
	results, errs, err := pipe.ProcessCtx(context.Background(), frames)
	if err != nil {
		fmt.Println("unexpected abort:", err)
		return
	}
	for _, f := range results {
		if !f.sharp {
			fmt.Printf("frame %d reached the sink unsharpened\n", f.id)
		}
	}
	dropped := make([]int, 0, len(errs))
	for _, e := range errs {
		dropped = append(dropped, e.Item)
	}
	sort.Ints(dropped)
	fmt.Printf("%d/%d frames delivered; dropped %v\n", len(results), len(frames), dropped)
	for _, e := range errs[:1] {
		fmt.Printf("typed error: stage=%q item=%d attempts=%d recovered=%v\n",
			e.Site, e.Item, e.Attempts, e.Recovered)
	}
	fmt.Println()
}

// retryDemo: transient faults. The first two attempts at task 7 fail;
// with 3 retries and exponential backoff the run heals completely.
func retryDemo() {
	fmt.Println("=== 2. RetryItem: healing a flaky worker ===")
	ps := parrt.NewParams()
	ps.Set("masterworker.checksum.faultpolicy", int(parrt.RetryItem))
	ps.Set("masterworker.checksum.retries", 3)
	ps.Set("masterworker.checksum.retrybackoffus", 50)

	var attemptsAt7 atomic.Int64
	mw := parrt.NewMasterWorker("checksum", ps, 4, func(n int) int {
		if n == 7 && attemptsAt7.Add(1) <= 2 {
			panic("transient I/O error")
		}
		return n * n
	})
	sums, errs, err := mw.ProcessCtx(context.Background(), []int{1, 2, 3, 4, 5, 6, 7, 8})
	fmt.Printf("results=%v itemErrors=%d err=%v (task 7 took %d attempts)\n",
		sums, len(errs), err, attemptsAt7.Load())
	fmt.Println()
}

// cancelDemo: graceful drain. The consumer stops after ten frames and
// cancels; the pipeline's goroutines wind down, the output channel
// closes, and the report records the cancellation cause.
func cancelDemo() {
	fmt.Println("=== 3. Cancellation: draining a streaming pipeline ===")
	ps := parrt.NewParams()
	pipe := parrt.NewPipeline("stream", ps,
		parrt.Stage[frame]{Name: "decode", Replicable: true, Fn: func(f *frame) {}},
		parrt.Stage[frame]{Name: "encode", Fn: func(f *frame) {}},
	)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan *frame)
	go func() {
		defer close(in)
		for i := 0; ; i++ {
			select {
			case in <- &frame{id: i}:
			case <-ctx.Done():
				return
			}
		}
	}()
	out, rep := pipe.RunCtx(ctx, in)
	got := 0
	for range out {
		if got++; got == 10 {
			cancel()
		}
	}
	fmt.Printf("consumed at least 10 frames (%v), then canceled; canceled=%v, leaked goroutines: none (channel closed)\n",
		got >= 10, errors.Is(rep.Err(), context.Canceled))
}
