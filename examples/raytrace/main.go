// Raytrace reruns the objective half of the user study (experiment E5)
// on the study benchmark: Patty's detector, the hotspot profiler the
// manual group relied on, and a conservative compiler-style detector
// all analyze the same raytracer; their finds are scored against the
// manually established ground truth, and the full simulated study
// tables are printed.
//
//	go run ./examples/raytrace
package main

import (
	"fmt"
	"log"

	"patty/internal/baseline"
	"patty/internal/corpus"
	"patty/internal/study"
)

func main() {
	prog := corpus.Get("raytrace")
	fmt.Printf("benchmark: %s (%d LoC, %d ground-truth locations)\n",
		prog.Name, prog.LoC(), len(prog.Truth))
	for _, tr := range prog.Truth {
		hot := ""
		if tr.Hot {
			hot = " [profiler-visible]"
		}
		fmt.Printf("  ground truth: %s loop#%d (%s)%s — %s\n",
			tr.Fn, tr.LoopIdx, tr.Kind, hot, tr.Note)
	}

	fmt.Println("\nbuilding the semantic model (static + dynamic)...")
	m, err := prog.BuildModel(true)
	if err != nil {
		log.Fatal(err)
	}

	detectors := []baseline.Detector{
		baseline.Patty{},
		baseline.HotspotProfiler{},
		baseline.StaticConservative{},
	}
	for _, d := range detectors {
		locs := d.Detect(m)
		fmt.Printf("\n%s flags %d location(s):\n", d.Name(), len(locs))
		for _, loc := range locs {
			fn := m.Prog.Func(loc.Fn)
			fmt.Printf("  %s at %v\n", loc.Fn, fn.StmtPos(loc.LoopID))
		}
	}

	fmt.Println("\n=== simulated user study (paper §4, seeded model) ===")
	res := study.Run(study.DefaultSeed, study.PaperOutcome())
	fmt.Print(res.FormatFig5b())
	fmt.Println()
	fmt.Print(res.FormatEffectivity())
}
