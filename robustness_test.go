package patty

// Generative robustness tests: the detection pipeline must behave on
// arbitrary (small, valid) programs, not just the corpus — no panics,
// deterministic results, and annotations that survive the
// insert→parse→extract round trip.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"patty/internal/model"
	"patty/internal/pattern"
	"patty/internal/source"
	"patty/internal/tadl"
)

// genProgram builds a random but valid sequential program from loop
// templates exercising all detector paths.
func genProgram(rng *rand.Rand) string {
	templates := []func(name string, r *rand.Rand) string{
		func(n string, r *rand.Rand) string { // independent map
			return fmt.Sprintf(`func %s(a, b []int) {
	for i := 0; i < len(a); i++ {
		b[i] = a[i] * %d
	}
}`, n, 1+r.Intn(9))
		},
		func(n string, r *rand.Rand) string { // reduction
			return fmt.Sprintf(`func %s(a []int) int {
	s := %d
	for i := 0; i < len(a); i++ {
		s += a[i] %% %d
	}
	return s
}`, n, r.Intn(5), 2+r.Intn(7))
		},
		func(n string, r *rand.Rand) string { // recurrence
			return fmt.Sprintf(`func %s(a []int) {
	for i := 1; i < len(a); i++ {
		a[i] = a[i-%d] + %d
	}
}`, n, 1+r.Intn(2), r.Intn(9))
		},
		func(n string, r *rand.Rand) string { // early exit
			return fmt.Sprintf(`func %s(a []int) int {
	for i := 0; i < len(a); i++ {
		if a[i] == %d {
			return i
		}
	}
	return -1
}`, n, r.Intn(100))
		},
		func(n string, r *rand.Rand) string { // pipeline-ish append
			return fmt.Sprintf(`func %s(a []int) []int {
	out := []int{}
	for i := 0; i < len(a); i++ {
		v := a[i]*%d + %d
		w := v %% %d
		out = append(out, w)
	}
	return out
}`, n, 1+r.Intn(5), r.Intn(9), 2+r.Intn(9))
		},
		func(n string, r *rand.Rand) string { // irregular
			return fmt.Sprintf(`func %s(a, b []int) {
	for i := 0; i < len(a); i++ {
		if a[i] > %d {
			b[i] = a[i] * a[i]
		} else {
			b[i] = -a[i]
		}
	}
}`, n, r.Intn(50))
		},
		func(n string, r *rand.Rand) string { // continue
			return fmt.Sprintf(`func %s(a, b []int) {
	for i := 0; i < len(a); i++ {
		if a[i] %% %d == 0 {
			continue
		}
		b[i] = a[i] + %d
	}
}`, n, 2+r.Intn(5), r.Intn(9))
		},
		func(n string, r *rand.Rand) string { // nested
			return fmt.Sprintf(`func %s(m [][]int) int {
	t := 0
	for i := 0; i < len(m); i++ {
		for j := 0; j < len(m[i]); j++ {
			t += m[i][j] %% %d
		}
	}
	return t
}`, n, 2+r.Intn(9))
		},
	}
	var b strings.Builder
	b.WriteString("package p\n\n")
	k := 1 + rng.Intn(5)
	for f := 0; f < k; f++ {
		tmpl := templates[rng.Intn(len(templates))]
		b.WriteString(tmpl(fmt.Sprintf("F%d", f), rng))
		b.WriteString("\n\n")
	}
	return b.String()
}

func TestDetectionRobustOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 120; trial++ {
		src := genProgram(rng)
		prog, err := source.ParseFile("r.go", src)
		if err != nil {
			t.Fatalf("generator produced invalid Go:\n%s\n%v", src, err)
		}
		m := model.Build(prog)
		rep := pattern.Detect(m, pattern.Options{SkipNested: true})

		// Determinism: a second run must agree.
		rep2 := pattern.Detect(model.Build(prog), pattern.Options{SkipNested: true})
		if len(rep.Candidates) != len(rep2.Candidates) || len(rep.Rejected) != len(rep2.Rejected) {
			t.Fatalf("nondeterministic detection on:\n%s", src)
		}

		// Each candidate's annotation survives the round trip.
		for _, c := range rep.Candidates {
			annotated, err := tadl.Annotate(prog, src, []tadl.Annotation{c.Annotation})
			if err != nil {
				t.Fatalf("annotate failed on:\n%s\n%v", src, err)
			}
			prog2, err := source.ParseFile("r.go", annotated)
			if err != nil {
				t.Fatalf("annotated source does not parse:\n%s\n%v", annotated, err)
			}
			anns, err := tadl.Extract(prog2)
			if err != nil {
				t.Fatalf("extract failed on:\n%s\n%v", annotated, err)
			}
			found := false
			for _, a := range anns {
				if a.Fn == c.Fn && a.Arch.String() == c.Arch.String() {
					found = true
				}
			}
			if !found {
				t.Fatalf("annotation for %s (%s) lost in round trip:\n%s", c.Fn, c.Arch, annotated)
			}
		}

		// Every loop is accounted for: candidate or rejection.
		outer := 0
		for _, lm := range m.AllLoops() {
			if !lm.Nested {
				outer++
			}
		}
		if got := len(rep.Candidates) + len(rep.Rejected); got != outer {
			t.Fatalf("loop accounting: %d candidates+rejections for %d outer loops in:\n%s",
				got, outer, src)
		}
	}
}

func TestFullProcessRobustOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		src := genProgram(rng)
		// The full process (including transformation, which may skip
		// unsupported shapes but must not fail or panic).
		arts, err := Parallelize(map[string]string{"r.go": src}, nil)
		if err != nil {
			t.Fatalf("process failed on:\n%s\n%v", src, err)
		}
		for _, out := range arts.Outputs {
			if !strings.Contains(out.Code, "DO NOT EDIT") {
				t.Fatal("generated code missing header")
			}
		}
	}
}
