package patty

// Tests that build and execute the example binaries — the examples are
// part of the public deliverable and must keep working. Assertions pin
// concrete output values (detected locations, generated signatures,
// parameter values, schedule counts, seeded study numbers), not just
// phrase presence; timing-dependent lines (ms, speedups) are only
// checked for shape.

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

func runExample(t *testing.T, path string) string {
	t.Helper()
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s: %v\n%s", path, err, out)
	}
	return string(out)
}

func assertContains(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	out := runExample(t, "./examples/quickstart")
	assertContains(t, out,
		// Detection verdicts with their exact source locations.
		"demo.go:5:2    data-parallel  TADL: forall(A+)",
		"demo.go:13:2   data-parallel  TADL: forall(A+)",
		"demo.go:21:2   PLDD: carried dependences span the whole body",
		// Annotated source carries the directives at the loops.
		"//tadl:arch forall forall(A+)",
		"//tadl:stage A",
		// Generated code: exact signatures and runtime calls.
		"func BrightenParallel(ps *parrt.Params, in, out []int, gain int)",
		"func NormParallel(ps *parrt.Params, in []int) int {",
		`pattyPF := parrt.NewParallelFor("Brighten.L0", ps, 0)`,
		"total = total + parrt.Reduce(pattyPF, len(in), 0, func(i int) int {",
		// Tuning configuration values (defaults are deterministic;
		// worker counts follow the machine, so only the key is pinned).
		"parallelfor.Brighten.L0.chunksize                            = 64  [64..64]",
		"parallelfor.Norm.L1.workers",
		"2 parallel unit test(s) generated",
	)
	// Spawn-sizing parameters must never be suggested as zero — a 0
	// worker count frozen into the tuning file means "no workers".
	if regexp.MustCompile(`\.workers\s+= 0\b`).MatchString(out) {
		t.Error("tuning config suggests a zero worker count")
	}
}

func TestExampleFaulttolerant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	out := runExample(t, "./examples/faulttolerant")
	assertContains(t, out,
		// SkipItem: every 9th of 36 frames is corrupt; exactly those drop.
		"32/36 frames delivered; dropped [8 17 26 35]",
		`typed error: stage="decode" item=8 attempts=1 recovered=corrupt frame 8`,
		// RetryItem: the flaky task heals on its third attempt, leaving
		// a spotless result.
		"results=[1 4 9 16 25 36 49 64] itemErrors=0 err=<nil> (task 7 took 3 attempts)",
		// Cancellation: partial results plus a recorded cancel cause.
		"consumed at least 10 frames (true), then canceled; canceled=true",
	)
}

func TestExampleVideoPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses with sleeps")
	}
	out := runExample(t, "./examples/videopipeline")
	assertContains(t, out,
		// Phase summary values.
		"1 candidate(s), 2 rejection(s)",
		"1 generated file(s), 16 tuning parameter(s), 1 parallel unit test(s)",
		"detected architecture (Fig. 3b): (A || B || C+) => D => E",
		// Generated pipeline code excerpt.
		"func ProcessParallel(ps *parrt.Params, aviIn *AviStream) *AviStream {",
		`pattyPL := parrt.NewPipeline("Process.L1", ps,`,
		`parrt.Group("A_B_C", true,`,
		// Scheduler exploration: exact schedule count, zero defects.
		"3000 schedule(s): 0 race(s), 0 deadlock(s), 0 failure(s)",
		"unit test Process.L1.pipeline: 3000 schedules, buggy=false",
		// 48 frames through 3 runtime executions = 144 items per stage.
		"items= 144",
	)
	// All three runtime executions must produce the sequential result.
	if n := strings.Count(out, "(results identical to sequential)"); n != 3 {
		t.Errorf("got %d identical-result executions, want 3", n)
	}
	if !strings.Contains(out, "speedup pipeline vs sequential") {
		t.Error("output missing speedup summary")
	}
}

func TestExampleIndexer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses with sleeps")
	}
	out := runExample(t, "./examples/indexer")
	// The corpus is fixed, so the distinct-term count is a value, not
	// a timing artifact.
	assertContains(t, out,
		"10 distinct terms",
		"best configuration:",
		"pipeline.indexer.stage.0.replication",
		"pipeline.indexer.buffersize",
		"speedup vs sequential",
	)
	// The untuned run prints its identical-index check; the tuned runs
	// verify via log.Fatalf (which would fail runExample), so reaching
	// the evaluation summary proves every tuned index matched too.
	if n := strings.Count(out, "(index identical)"); n != 1 {
		t.Errorf("got %d identical-index checks, want 1", n)
	}
	if !strings.Contains(out, "tuning evaluations") {
		t.Error("output missing tuning-evaluation summary")
	}
}

func TestExampleRaytrace(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full dynamic model of the raytracer")
	}
	out := runExample(t, "./examples/raytrace")
	assertContains(t, out,
		"benchmark: raytrace (188 LoC, 3 ground-truth locations)",
		// Patty finds all three ground-truth loops, at exact positions.
		"patty flags 3 location(s):",
		"Renderer.Render at raytrace.go:168:2",
		"NormalizeLights at raytrace.go:177:2",
		"ApplyGamma at raytrace.go:183:2",
		// The baselines miss the cheap loops.
		"hotspot-profiler flags 1 location(s):",
		"static-conservative flags 2 location(s):",
		// Seeded user-study model (study.DefaultSeed): the Fig. 5
		// numbers are deterministic.
		"Figure 5b. Time Measurements (in minutes)",
		"39.09",
		"45.83",
		"32.57",
		"Effectivity (ground truth: 3 locations; Patty tool reports 3, plain profiler reveals 1)",
	)
}
