package patty

// Smoke tests that build and execute the example binaries — the
// examples are part of the public deliverable and must keep working.

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, path string) string {
	t.Helper()
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s: %v\n%s", path, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	out := runExample(t, "./examples/quickstart")
	for _, want := range []string{
		"forall(A+)",
		"//tadl:arch",
		"parrt.NewParallelFor",
		"parrt.Reduce",
		"PLDD: carried dependences span the whole body",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}

func TestExampleVideoPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses with sleeps")
	}
	out := runExample(t, "./examples/videopipeline")
	for _, want := range []string{
		"(A || B || C+) => D => E",
		"buggy=false",
		"results identical to sequential",
		"speedup pipeline vs sequential",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("videopipeline output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleIndexer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses with sleeps")
	}
	out := runExample(t, "./examples/indexer")
	for _, want := range []string{"index identical", "best configuration", "speedup vs sequential"} {
		if !strings.Contains(out, want) {
			t.Errorf("indexer output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleRaytrace(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full dynamic model of the raytracer")
	}
	out := runExample(t, "./examples/raytrace")
	for _, want := range []string{
		"patty flags 3 location(s)",
		"hotspot-profiler flags 1 location(s)",
		"Effectivity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("raytrace output missing %q:\n%s", want, out)
		}
	}
}
