package patty

import (
	"strings"
	"testing"

	"patty/internal/interp"
	"patty/internal/pattern"
	"patty/internal/sched"
)

const videoExample = `package p

type Image struct {
	ID  int
	Lum int
}

type Stream struct {
	Images []Image
}

func (s *Stream) Add(img Image) { s.Images = append(s.Images, img) }

func mix(x, rounds int) int {
	if rounds == 0 {
		if x < 0 {
			return -x % 65536
		}
		return x % 65536
	}
	return mix((x*31+7)%1000003, rounds-1)
}

func crop(img Image) Image  { return Image{ID: img.ID, Lum: mix(img.Lum, 12)} }
func histo(img Image) Image { return Image{ID: img.ID, Lum: mix(img.Lum, 14)} }
func oil(img Image) Image   { return Image{ID: img.ID, Lum: mix(img.Lum, 90)} }

func Process(in []Image, out *Stream) {
	for _, img := range in {
		c := crop(img)
		h := histo(img)
		o := oil(img)
		r := Image{ID: img.ID, Lum: c.Lum + h.Lum + o.Lum}
		out.Add(r)
	}
}
`

func videoWorkload() *Workload {
	return &Workload{
		Entry: "Process",
		Args: func(m *interp.Machine) []interp.Value {
			imgs := make([]interp.Value, 12)
			for i := range imgs {
				imgs[i] = m.NewStructValue("Image", int64(i), int64(i*37+5))
			}
			return []interp.Value{
				m.NewSlice(imgs...),
				m.NewStructValue("Stream", m.NewSlice()),
			}
		},
	}
}

func TestParallelizeEndToEnd(t *testing.T) {
	arts, err := Parallelize(map[string]string{"video.go": videoExample}, videoWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts.Report.Candidates) != 1 {
		t.Fatalf("candidates = %+v", arts.Report.Candidates)
	}
	c := arts.Report.Candidates[0]
	if c.Kind != pattern.PipelineKind || c.Fn != "Process" {
		t.Fatalf("candidate = %+v", c)
	}
	// Fig. 3b artifact: annotated source.
	ann := arts.AnnotatedSources["video.go"]
	if !strings.Contains(ann, "//tadl:arch pipeline") {
		t.Fatalf("missing TADL annotation:\n%s", ann)
	}
	// The hot oil stage must carry the paper's replication marker.
	if !strings.Contains(ann, "C+") {
		t.Fatalf("expected C+ (hot oil stage) in arch: %s", c.Arch)
	}
	// Fig. 3d artifact: generated code.
	if len(arts.Outputs) != 1 || !strings.Contains(arts.Outputs[0].Code, "parrt.NewPipeline") {
		t.Fatalf("outputs = %+v", arts.Outputs)
	}
	// Fig. 3c artifact: tuning configuration with the PLTP parameters.
	keys := map[string]bool{}
	for _, e := range arts.TuningConfig.Entries {
		keys[e.Key] = true
	}
	found := false
	for k := range keys {
		if strings.Contains(k, "replication") {
			found = true
		}
	}
	if !found {
		t.Fatalf("tuning config lacks replication parameters: %+v", arts.TuningConfig.Entries)
	}
	// Generated unit tests exist.
	if len(arts.UnitTests) != 1 {
		t.Fatalf("unit tests = %d", len(arts.UnitTests))
	}
}

func TestValidateRunsUnitTests(t *testing.T) {
	p := NewProcess(map[string]string{"video.go": videoExample}, Options{Workload: videoWorkload()})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	results, err := Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Result.Buggy() {
		t.Fatalf("correct pipeline must validate clean: %+v", results[0].Result)
	}
	if results[0].Result.Schedules == 0 {
		t.Fatal("no schedules explored")
	}
}

func TestDetectOnly(t *testing.T) {
	rep, err := Detect(map[string]string{"video.go": videoExample}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) != 1 {
		t.Fatalf("candidates = %+v", rep.Candidates)
	}
}

func TestTransformAnnotatedMode(t *testing.T) {
	src := `package p

func double(x int) int { return 2 * x }

func Apply(a, b []int) {
	//tadl:arch forall forall(A)
	for i := 0; i < len(a); i++ {
		//tadl:stage A
		b[i] = double(a[i])
	}
}
`
	arts, err := TransformAnnotated(map[string]string{"apply.go": src})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts.Outputs) != 1 || !strings.Contains(arts.Outputs[0].Code, "parrt.NewParallelFor") {
		t.Fatalf("outputs = %+v", arts.Outputs)
	}
}

func TestProcessPhaseOrderEnforced(t *testing.T) {
	p := NewProcess(map[string]string{"a.go": "package p\nfunc F() {}\n"}, Options{})
	if err := p.AnalyzePatterns(); err == nil {
		t.Fatal("AnalyzePatterns before CreateModel must fail")
	}
	if err := p.DeriveArchitecture(); err == nil {
		t.Fatal("DeriveArchitecture before AnalyzePatterns must fail")
	}
	if err := p.TransformCode(); err == nil {
		t.Fatal("TransformCode before DeriveArchitecture must fail")
	}
	if _, err := p.Validate(sched.Options{}); err == nil {
		t.Fatal("Validate before TransformCode must fail")
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, err := Parallelize(map[string]string{"bad.go": "not go"}, nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestProcessLogging(t *testing.T) {
	var lines []string
	p := NewProcess(map[string]string{"video.go": videoExample},
		Options{Log: func(s string) { lines = append(lines, s) }})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, phase := range []string{"1. Model Creation", "2. Pattern Analysis", "3. Tunable Architecture", "4. Code Transform"} {
		if !strings.Contains(joined, phase) {
			t.Errorf("log missing %q:\n%s", phase, joined)
		}
	}
}
